"""Unit tests for the SimNetwork harness."""

import pytest

from repro.flowspace import Packet, TWO_FIELD_LAYOUT
from repro.net import SimNetwork, TopologyBuilder
from repro.net.simnet import CONTROL_OVERHEAD_S


class EchoSwitch:
    """Minimal behaviour: forward every packet toward a fixed host."""

    def __init__(self, name, destination):
        self.name = name
        self.destination = destination
        self.network = None
        self.seen = 0

    def attach(self, network):
        self.network = network

    def handle_packet(self, network, packet):
        self.seen += 1
        network.forward_toward(self.name, self.destination, packet)


def build_net():
    topo = TopologyBuilder.linear(3, hosts_per_switch=1)
    net = SimNetwork(topo)
    for name in topo.switches():
        net.register_node(EchoSwitch(name, "h2"))
    return topo, net


class TestDelivery:
    def test_end_to_end_delivery(self):
        topo, net = build_net()
        packet = Packet.from_fields(TWO_FIELD_LAYOUT)
        net.inject_from_host("h0", packet)
        net.run()
        delivered = net.delivered()
        assert len(delivered) == 1
        record = delivered[0]
        assert record.endpoint == "h2"
        assert record.delivered
        assert record.hops == 4  # h0->s0->s1->s2->h2
        assert record.delay > 0

    def test_inject_at_switch_skips_host_hop(self):
        topo, net = build_net()
        packet = Packet.from_fields(TWO_FIELD_LAYOUT)
        net.inject_at_switch("s0", packet)
        net.run()
        assert net.delivered()[0].hops == 3

    def test_ingress_recorded(self):
        topo, net = build_net()
        packet = Packet.from_fields(TWO_FIELD_LAYOUT)
        net.inject_from_host("h1", packet)
        net.run()
        assert net.delivered()[0].ingress_switch == "s1"

    def test_unregistered_switch_drops(self):
        topo = TopologyBuilder.linear(2, hosts_per_switch=1)
        net = SimNetwork(topo)  # no behaviours registered
        packet = Packet.from_fields(TWO_FIELD_LAYOUT)
        net.inject_from_host("h0", packet)
        net.run()
        dropped = net.dropped()
        assert len(dropped) == 1
        assert "no behaviour" in dropped[0].drop_reason

    def test_register_unknown_node_rejected(self):
        topo, net = build_net()
        with pytest.raises(KeyError):
            net.register_node(EchoSwitch("ghost", "h0"))


class TestForwarding:
    def test_forward_toward_unreachable_drops(self):
        topo = TopologyBuilder.linear(2, hosts_per_switch=1)
        topo.remove_link("s0", "s1")
        net = SimNetwork(topo)
        for name in topo.switches():
            net.register_node(EchoSwitch(name, "h1"))
        packet = Packet.from_fields(TWO_FIELD_LAYOUT)
        net.inject_from_host("h0", packet)
        net.run()
        assert len(net.dropped()) == 1
        assert "unreachable" in net.dropped()[0].drop_reason

    def test_rebuild_routes_after_change(self):
        topo = TopologyBuilder.star(3, hosts_per_leaf=1)
        net = SimNetwork(topo)
        for name in topo.switches():
            net.register_node(EchoSwitch(name, "h2"))
        # Cut s2's link and verify re-route failure then recovery.
        assert net.routes.reachable("s0", "s2")
        topo.remove_link("hub", "s2")
        net.rebuild_routes()
        assert not net.routes.reachable("s0", "s2")
        topo.add_link("hub", "s2")
        net.rebuild_routes()
        assert net.routes.reachable("s0", "s2")


class TestControlMessages:
    def test_send_control_latency(self):
        topo, net = build_net()
        fired = []
        net.send_control("s0", "s2", lambda: fired.append(net.scheduler.now))
        net.run()
        expected = net.routes.distance("s0", "s2") + CONTROL_OVERHEAD_S
        assert fired == [pytest.approx(expected)]
        assert net.control_messages_sent == 1

    def test_send_control_unreachable_is_dropped(self):
        topo = TopologyBuilder.linear(2)
        topo.remove_link("s0", "s1")
        net = SimNetwork(topo)
        fired = []
        net.send_control("s0", "s1", fired.append, 1)
        net.run()
        assert fired == []


class TestAccounting:
    def test_delivery_record_fields(self):
        topo, net = build_net()
        packet = Packet.from_fields(TWO_FIELD_LAYOUT, flow_id=42)
        packet.via_authority = True
        net.inject_from_host("h0", packet)
        net.run()
        record = net.delivered()[0]
        assert record.flow_id == 42
        assert record.via_authority
        assert not record.via_controller
        assert record.delay == record.finished_at - record.created_at

    def test_link_counters(self):
        topo, net = build_net()
        net.inject_from_host("h0", Packet.from_fields(TWO_FIELD_LAYOUT))
        net.run()
        assert net.link("s0", "s1").packets_carried == 1
        assert net.link("s1", "s0").packets_carried == 0
