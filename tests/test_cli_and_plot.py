"""Tests for the CLI and the ASCII plotter."""

import pytest

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.series import Series
from repro.cli import EXPERIMENTS, main


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        a = Series("alpha", x=[1, 2, 3], y=[10, 20, 30], x_label="k", y_label="v")
        b = Series("beta", x=[1, 2, 3], y=[30, 20, 10])
        text = ascii_plot([a, b], title="demo")
        assert "demo" in text
        assert "o alpha" in text
        assert "x beta" in text
        assert "[k]" in text

    def test_empty(self):
        assert ascii_plot([], title="nothing") == "nothing"
        assert ascii_plot([Series("empty")]) == "(no data)"

    def test_log_x(self):
        series = Series("s", x=[10, 100, 1000], y=[1, 2, 3])
        text = ascii_plot([series], log_x=True)
        assert "(log)" in text

    def test_flat_series_does_not_crash(self):
        series = Series("flat", x=[1, 2], y=[5, 5])
        assert "flat" in ascii_plot([series])


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_quick_partitioning(self, capsys):
        assert main(["run", "E5", "--quick", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "E5-partition-tcam" in out
        assert "campus" in out

    def test_run_quick_with_plot(self, capsys):
        assert main(["run", "E6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "duplication" in out.lower() or "E6" in out

    def test_case_insensitive(self, capsys):
        assert main(["run", "e1", "--quick", "--no-plot"]) == 0
        assert "E1-policies" in capsys.readouterr().out

    def test_registry_covers_all_ten(self):
        assert set(EXPERIMENTS) == (
            {f"E{i}" for i in range(1, 11)}
            | {"E8C", "E9Q", "C1", "C2", "C2-STATIC", "M1"}
        )
