"""Tuple-space search: semantic equivalence with RuleTable."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowspace import (
    Forward,
    Match,
    Packet,
    Rule,
    RuleTable,
    Ternary,
    TWO_FIELD_LAYOUT,
)
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.tuplespace import TupleSpaceTable
from repro.workloads.classbench import generate_classbench

L = TWO_FIELD_LAYOUT


def rule(priority, t):
    return Rule(Match(L, t), priority, Forward("x"))


class TestBasics:
    def test_empty(self):
        table = TupleSpaceTable(L)
        assert table.lookup_bits(0) is None
        assert len(table) == 0

    def test_single_rule(self):
        r = rule(5, Ternary.from_string("0000xxxx" + "x" * 8))
        table = TupleSpaceTable(L, [r])
        assert table.lookup_bits(0x01FF) is r
        assert table.lookup_bits(0xF000) is None
        assert table.tuple_count == 1

    def test_groups_by_mask(self):
        a = rule(1, Ternary.from_string("0000xxxx" + "x" * 8))
        b = rule(2, Ternary.from_string("1111xxxx" + "x" * 8))
        c = rule(3, Ternary.from_string("x" * 8 + "0000xxxx"))
        table = TupleSpaceTable(L, [a, b, c])
        assert table.tuple_count == 2
        assert len(table) == 3

    def test_priority_respected_across_groups(self):
        low = rule(1, Ternary.wildcard(16))
        high = rule(9, Ternary.from_string("0000xxxx" + "x" * 8))
        table = TupleSpaceTable(L, [low, high])
        assert table.lookup_bits(0x0100) is high
        assert table.lookup_bits(0xFF00) is low

    def test_tie_break_insertion_order(self):
        first = rule(5, Ternary.wildcard(16))
        second = rule(5, Ternary.from_string("x" * 16))
        table = TupleSpaceTable(L, [first, second])
        assert table.lookup_bits(0) is first

    def test_tie_break_across_groups(self):
        first = rule(5, Ternary.from_string("0xxxxxxx" + "x" * 8))
        second = rule(5, Ternary.from_string("x" * 8 + "0xxxxxxx"))
        table = TupleSpaceTable(L, [first, second])
        # A point matching both must go to the earlier-inserted rule.
        assert table.lookup_bits(0) is first

    def test_remove(self):
        a = rule(5, Ternary.wildcard(16))
        b = rule(3, Ternary.wildcard(16))
        table = TupleSpaceTable(L, [a, b])
        assert table.remove(a)
        assert table.lookup_bits(0) is b
        assert not table.remove(a)
        assert len(table) == 1

    def test_layout_checked(self):
        foreign = Rule(Match.any(FIVE_TUPLE_LAYOUT), 1, Forward("x"))
        with pytest.raises(ValueError):
            TupleSpaceTable(L, [foreign])

    def test_lookup_packet(self):
        r = rule(1, Ternary.wildcard(16))
        table = TupleSpaceTable(L, [r])
        assert table.lookup(Packet.from_fields(L, f1=1)) is r


class TestEquivalenceOnClassBench:
    def test_matches_rule_table_everywhere(self):
        rules = generate_classbench("acl", count=300, seed=77, layout=FIVE_TUPLE_LAYOUT)
        linear = RuleTable(FIVE_TUPLE_LAYOUT, rules)
        tss = TupleSpaceTable(FIVE_TUPLE_LAYOUT, rules)
        rng = random.Random(0)
        probes = [rng.getrandbits(FIVE_TUPLE_LAYOUT.width) for _ in range(300)]
        probes += [r.match.ternary.sample(rng) for r in rules[:100]]
        for bits in probes:
            assert tss.lookup_bits(bits) is linear.lookup_bits(bits)

    def test_bulk_construction_equals_incremental(self):
        """The constructor's bulk-load fast path is observably identical
        to one-at-a-time adds: same winners everywhere, same ordered
        bucket contents (priority then insertion tie-break)."""
        rules = generate_classbench("fw", count=250, seed=13, layout=FIVE_TUPLE_LAYOUT)
        bulk = TupleSpaceTable(FIVE_TUPLE_LAYOUT, rules)
        incremental = TupleSpaceTable(FIVE_TUPLE_LAYOUT)
        for r in rules:
            incremental.add(r)
        assert len(bulk) == len(incremental) == len(rules)
        assert bulk.tuple_count == incremental.tuple_count
        for mask, group in bulk._groups.items():
            other = incremental._groups[mask]
            assert group.max_priority == other.max_priority
            assert {k: [(key, id(r)) for key, r in b] for k, b in group.buckets.items()} \
                == {k: [(key, id(r)) for key, r in b] for k, b in other.buckets.items()}
        rng = random.Random(3)
        probes = [rng.getrandbits(FIVE_TUPLE_LAYOUT.width) for _ in range(200)]
        probes += [r.match.ternary.sample(rng) for r in rules[:100]]
        for bits in probes:
            assert bulk.lookup_bits(bits) is incremental.lookup_bits(bits)

    def test_tuple_count_small_on_operator_policies(self):
        """Operator-style policies reuse a handful of mask shapes — the
        regime tuple-space search wins in (synthetic ClassBench draws
        prefix lengths independently, so its tuple count is higher)."""
        from repro.workloads.policies import vpn_policy
        rules = vpn_policy(customers=40, sites_per_customer=4,
                           layout=FIVE_TUPLE_LAYOUT)
        tss = TupleSpaceTable(FIVE_TUPLE_LAYOUT, rules)
        assert tss.tuple_count <= 3  # /24-pair rules + the default
        assert len(tss) == len(rules)


ternaries16 = st.builds(
    lambda v, m: Ternary(v & m, m, 16),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
)


@settings(max_examples=120, deadline=None)
@given(
    specs=st.lists(
        st.tuples(ternaries16, st.integers(min_value=0, max_value=7)),
        min_size=0,
        max_size=14,
    ),
    probes=st.lists(st.integers(min_value=0, max_value=0xFFFF),
                    min_size=1, max_size=10),
    removals=st.lists(st.integers(min_value=0, max_value=13), max_size=4),
)
def test_prop_equivalent_to_rule_table(specs, probes, removals):
    """Lookup (including after removals) matches RuleTable exactly."""
    rules = [rule(prio, t) for t, prio in specs]
    linear = RuleTable(L, rules)
    tss = TupleSpaceTable(L, rules)
    for index in removals:
        if index < len(rules):
            victim = rules[index]
            assert linear.remove(victim) == tss.remove(victim)
    for bits in probes:
        assert tss.lookup_bits(bits) is linear.lookup_bits(bits)
