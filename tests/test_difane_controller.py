"""Behavioural tests for the DIFANE controller: distribution and dynamics."""

import random

import pytest

from repro.core import DifaneNetwork
from repro.flowspace import (
    Drop,
    FIVE_TUPLE_LAYOUT,
    Forward,
    Match,
    Packet,
    Rule,
    RuleTable,
    Ternary,
)
from repro.net import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def build(authority=("s1", "s2"), replication=1, **kwargs):
    topo = TopologyBuilder.linear(4, hosts_per_switch=1)
    rules, host_ips = routing_policy_for_topology(topo, L, acl_rules=4)
    dn = DifaneNetwork.build(
        topo, rules, L,
        authority_switches=list(authority),
        replication=replication,
        cache_capacity=64,
        redirect_rate=None,
        partitions_per_authority=2,
        **kwargs,
    )
    return dn, topo, host_ips


def check_semantics(dn, samples=200, seed=0):
    """Distributed authority lookup == single-table oracle."""
    oracle = RuleTable(L, dn.controller.policy)
    rng = random.Random(seed)
    for _ in range(samples):
        bits = rng.getrandbits(L.width)
        partition_hit = None
        for state in dn.controller._states.values():
            if state.partition.region.matches(bits):
                owner = dn.switch(state.owners[0])
                partition_hit = owner.pipeline.authority.table.lookup_bits(bits)
                break
        expected = oracle.lookup_bits(bits)
        if expected is None:
            assert partition_hit is None
        else:
            assert partition_hit is not None
            assert (
                partition_hit.root_origin() is expected
                or partition_hit.actions == expected.actions
            )


class TestInstallation:
    def test_partition_rules_everywhere(self):
        dn, topo, host_ips = build()
        k = len(dn.controller.partitions())
        for name in topo.switches():
            assert len(dn.switch(name).pipeline.partition) == k

    def test_authority_rules_only_at_owners(self):
        dn, topo, host_ips = build()
        assert len(dn.switch("s0").pipeline.authority) == 0
        assert (
            len(dn.switch("s1").pipeline.authority)
            + len(dn.switch("s2").pipeline.authority)
            > 0
        )

    def test_initial_semantics(self):
        dn, _, _ = build()
        check_semantics(dn)

    def test_replication_installs_backups(self):
        dn, _, _ = build(replication=2)
        for state in dn.controller._states.values():
            assert len(state.owners) == 2


class TestPolicyDynamics:
    def test_insert_rule_visible_in_lookup(self):
        dn, topo, host_ips = build()
        new_rule = Rule(
            Match.build(L, nw_dst=Ternary.exact(host_ips["h3"], 32),
                        nw_proto=Ternary.exact(6, 8),
                        tp_dst=Ternary.exact(22, 16)),
            priority=10_000,
            actions=Drop(),
        )
        affected = dn.controller.insert_rule(new_rule)
        assert affected >= 1
        check_semantics(dn, seed=1)
        # A packet matching the new rule must now be dropped at the authority.
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h3"], nw_proto=6, tp_src=5555, tp_dst=22
        )
        dn.send("h0", packet)
        dn.run()
        assert dn.network.dropped()[-1].drop_reason == "policy drop"

    def test_insert_flushes_conflicting_caches(self):
        dn, topo, host_ips = build()
        # Warm the cache with a flow to h3:80.
        warm = Packet.from_fields(
            L, nw_dst=host_ips["h3"], nw_proto=6, tp_src=4000, tp_dst=80
        )
        dn.send("h0", warm)
        dn.run()
        assert len(dn.switch("s0").pipeline.cache) == 1
        # Insert a higher-priority rule overlapping the cached fragment.
        blocker = Rule(
            Match.build(L, nw_dst=Ternary.exact(host_ips["h3"], 32)),
            priority=10_000,
            actions=Drop(),
        )
        dn.controller.insert_rule(blocker)
        assert len(dn.switch("s0").pipeline.cache) == 0
        assert dn.controller.cache_entries_flushed >= 1
        # The flow now takes the miss path and gets dropped.
        again = Packet.from_fields(
            L, nw_dst=host_ips["h3"], nw_proto=6, tp_src=4000, tp_dst=80
        )
        dn.send("h0", again)
        dn.run()
        assert dn.network.dropped()[-1].drop_reason == "policy drop"

    def test_delete_rule_restores_lower_priority(self):
        dn, topo, host_ips = build()
        blocker = Rule(
            Match.build(L, nw_dst=Ternary.exact(host_ips["h3"], 32)),
            priority=10_000,
            actions=Drop(),
        )
        dn.controller.insert_rule(blocker)
        dn.controller.delete_rule(blocker)
        check_semantics(dn, seed=2)
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h3"], nw_proto=6, tp_src=4001, tp_dst=80
        )
        dn.send("h0", packet)
        dn.run()
        assert dn.network.delivered()[-1].endpoint == "h3"

    def test_delete_unknown_rule_raises(self):
        dn, _, _ = build()
        ghost = Rule(Match.any(L), 5, Drop())
        with pytest.raises(ValueError):
            dn.controller.delete_rule(ghost)

    def test_insert_before_install_policy_raises(self):
        from repro.core import DifaneController
        from repro.net import SimNetwork
        topo = TopologyBuilder.linear(2)
        controller = DifaneController(SimNetwork(topo), L, ["s0"])
        with pytest.raises(RuntimeError):
            controller.insert_rule(Rule(Match.any(L), 1, Drop()))


class TestTopologyDynamics:
    def test_link_failure_moves_no_rules(self):
        dn, topo, host_ips = build()
        before = dn.tcam_report()
        messages_before = dn.controller.control_messages
        dn.controller.handle_link_failure("s1", "s2")
        assert dn.tcam_report() == before
        assert dn.controller.control_messages == messages_before
        # Traffic still flows (the line is cut, but s0-s1 still works).
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h1"], nw_proto=6, tp_src=1234, tp_dst=80
        )
        dn.send("h0", packet)
        dn.run()
        assert dn.network.delivered()[-1].endpoint == "h1"

    def test_host_move_rewires_links(self):
        """Regression: the SimNetwork link map must follow topology edits,
        or traffic to/from the moved host drops with 'no link'."""
        dn, topo, host_ips = build()
        dn.controller.handle_host_move("h3", "s0")
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h3"], nw_proto=6, tp_src=777, tp_dst=80
        )
        dn.send("h3", packet)  # from the moved host itself
        dn.run()
        record = dn.network.deliveries[-1]
        assert record.delivered, record.drop_reason

    def test_host_move_flushes_stale_forwarding(self):
        dn, topo, host_ips = build()
        warm = Packet.from_fields(
            L, nw_dst=host_ips["h3"], nw_proto=6, tp_src=4000, tp_dst=80
        )
        dn.send("h0", warm)
        dn.run()
        flushed = dn.controller.handle_host_move("h3", "s0")
        assert flushed >= 1
        assert topo.host_attachment("h3") == "s0"
        # Traffic to the moved host is re-routed to its new home.
        again = Packet.from_fields(
            L, nw_dst=host_ips["h3"], nw_proto=6, tp_src=4000, tp_dst=80
        )
        dn.send("h1", again)
        dn.run()
        assert dn.network.delivered()[-1].endpoint == "h3"


class TestAuthorityFailover:
    def test_failover_with_replication(self):
        dn, topo, host_ips = build(replication=2)
        failed = "s1"
        repointed = dn.controller.handle_authority_failure(failed)
        assert failed not in dn.controller.authority_switches
        assert repointed >= 1
        # Partition rules no longer point at the failed switch.
        for name in topo.switches():
            for partition_rule in dn.switch(name).pipeline.partition:
                action = partition_rule.actions.actions[0]
                assert action.destination != failed
        check_semantics(dn, seed=3)

    def test_failover_without_replication_reinstalls(self):
        dn, topo, host_ips = build(replication=1)
        dn.controller.handle_authority_failure("s1")
        check_semantics(dn, seed=4)

    def test_last_authority_cannot_fail(self):
        dn, _, _ = build(authority=("s1",))
        with pytest.raises(RuntimeError):
            dn.controller.handle_authority_failure("s1")

    def test_unknown_authority_rejected(self):
        dn, _, _ = build()
        with pytest.raises(ValueError):
            dn.controller.handle_authority_failure("s0")
