"""Control-channel survivability: drops, retransmission, dedup, counters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.events import EventScheduler
from repro.openflow.channel import ChannelFaultModel, ControlChannel
from repro.openflow.messages import FlowMod, FlowModCommand, Heartbeat


def make_channel(scheduler, fault_model=None, **kwargs):
    inbox_up, inbox_down = [], []
    channel = ControlChannel(
        scheduler, "s0",
        to_controller=inbox_up.append,
        to_switch=inbox_down.append,
        latency_s=1e-3,
        fault_model=fault_model,
        **kwargs,
    )
    return channel, inbox_up, inbox_down


def flow_mod(i):
    return FlowMod(switch="s0", command=FlowModCommand.ADD, rule=i)


class TestPerfectChannel:
    def test_default_channel_is_untouched(self):
        scheduler = EventScheduler()
        channel, up, down = make_channel(scheduler)
        assert channel.reliable is False
        channel.send_to_controller(flow_mod(1))
        channel.send_to_switch(flow_mod(2))
        scheduler.run()
        assert [m.rule for m in up] == [1]
        assert [m.rule for m in down] == [2]
        counters = channel.counters()
        assert counters["attempted_up"] == counters["delivered_up"] == 1
        assert counters["retries_up"] == counters["lost_up"] == 0

    def test_fifo_order_without_faults(self):
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler)
        for i in range(10):
            channel.send_to_controller(flow_mod(i))
        scheduler.run()
        assert [m.rule for m in up] == list(range(10))


class TestReliableDelivery:
    def test_retransmission_survives_a_dropped_send(self):
        # First transmission dropped, everything after goes through.
        fm = ChannelFaultModel(drop_pattern=[True])
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler, fault_model=fm)
        assert channel.reliable is True
        channel.send_to_controller(flow_mod(7))
        scheduler.run()
        assert [m.rule for m in up] == [7]
        assert channel.retries_up == 1
        assert channel.delivered_up == 1
        assert channel.lost_up == 0

    def test_lost_ack_causes_duplicate_suppression(self):
        # Data arrives, its ack is dropped → retransmit → receiver dedups.
        fm = ChannelFaultModel(drop_pattern=[False, True])
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler, fault_model=fm)
        channel.send_to_controller(flow_mod(3))
        scheduler.run()
        assert [m.rule for m in up] == [3]  # handler saw it exactly once
        assert channel.duplicates_up == 1
        assert channel.retries_up == 1

    def test_retry_exhaustion_reports_permanent_loss(self):
        fm = ChannelFaultModel(drop_probability=1.0)
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler, fault_model=fm, max_retries=3)
        lost = []
        channel.on_lost = lambda direction, message: lost.append((direction, message))
        channel.send_to_controller(flow_mod(9))
        scheduler.run()
        assert up == []
        assert channel.lost_up == 1
        assert channel.retries_up == 3
        assert [(d, m.rule) for d, m in lost] == [("up", 9)]

    def test_backoff_grows_and_is_capped(self):
        fm = ChannelFaultModel(drop_probability=1.0)
        scheduler = EventScheduler()
        channel, _, _ = make_channel(
            scheduler, fault_model=fm, max_retries=10,
            retx_timeout_s=0.01, backoff_factor=2.0, backoff_cap_s=0.05,
        )
        channel.send_to_controller(flow_mod(0))
        scheduler.run()
        # 10 retries with doubling from 10 ms capped at 50 ms: the run must
        # finish after the capped sum, not the uncapped exponential one.
        assert scheduler.now < 1.0
        assert scheduler.now > 0.05  # at least a few capped timeouts long

    def test_per_send_reliability_override(self):
        # Heartbeats ride fire-and-forget even on a reliable channel.
        fm = ChannelFaultModel(drop_probability=1.0)
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler, fault_model=fm)
        channel.send_to_controller(Heartbeat(switch="s0"), reliable=False)
        scheduler.run()
        assert up == []
        assert channel.lost_up == 1
        assert channel.retries_up == 0  # never retransmitted
        assert channel.pending_messages() == []

    def test_attempted_vs_delivered_distinction(self):
        fm = ChannelFaultModel(drop_pattern=[True, True])
        scheduler = EventScheduler()
        channel, up, down = make_channel(scheduler, fault_model=fm)
        channel.send_to_controller(flow_mod(1))
        channel.send_to_switch(flow_mod(2))
        scheduler.run()
        counters = channel.counters()
        assert counters["attempted_up"] == 1
        assert counters["attempted_down"] == 1
        assert counters["delivered_up"] == 1
        assert counters["delivered_down"] == 1
        assert counters["retries_up"] + counters["retries_down"] == 2


class TestExactlyOnce:
    @given(
        pattern=st.lists(st.booleans(), max_size=60),
        count=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_install_delivered_exactly_once(self, pattern, count):
        """Any drop placement < 100%: unbounded ARQ delivers exactly once.

        The pattern hits data sends, retransmissions and acks alike; once
        exhausted the channel is perfect, so with ``max_retries=None``
        every message must come through — and dedup must stop any
        lost-ack duplicate from reaching the handler twice.
        """
        fm = ChannelFaultModel(drop_pattern=pattern)
        scheduler = EventScheduler()
        channel, up, down = make_channel(scheduler, fault_model=fm, max_retries=None)
        for i in range(count):
            channel.send_to_controller(flow_mod(i))
            channel.send_to_switch(flow_mod(1000 + i))
        scheduler.run()
        assert sorted(m.rule for m in up) == list(range(count))
        assert sorted(m.rule for m in down) == [1000 + i for i in range(count)]
        assert channel.lost_up == channel.lost_down == 0
        assert channel.pending_messages() == []

class TestAckCallbacks:
    def test_on_acked_fires_once_on_perfect_channel(self):
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler)
        acks = []
        channel.send_to_controller(flow_mod(1), on_acked=lambda: acks.append(scheduler.now))
        scheduler.run()
        assert [m.rule for m in up] == [1]
        # One RTT: delivery after one latency, ack back after another.
        assert acks == [2e-3]

    def test_on_acked_fires_once_despite_retransmission(self):
        fm = ChannelFaultModel(drop_pattern=[True])
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler, fault_model=fm)
        acks = []
        channel.send_to_controller(flow_mod(1), on_acked=lambda: acks.append("ack"))
        scheduler.run()
        assert [m.rule for m in up] == [1]
        assert channel.retries_up == 1
        assert acks == ["ack"]

    def test_on_acked_not_fired_on_retry_exhaustion(self):
        fm = ChannelFaultModel(drop_probability=1.0)
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler, fault_model=fm, max_retries=2)
        acks = []
        channel.send_to_controller(flow_mod(1), on_acked=lambda: acks.append("ack"))
        scheduler.run()
        assert up == []
        assert acks == []
        assert channel.lost_up == 1


class TestEndpointDeath:
    def test_dead_endpoint_swallows_unreliable_sends(self):
        scheduler = EventScheduler()
        channel, up, down = make_channel(scheduler)
        channel.set_endpoint_alive("up", False)
        channel.send_to_controller(flow_mod(1))
        channel.send_to_switch(flow_mod(2))
        scheduler.run()
        assert up == []  # dead controller side: swallowed
        assert [m.rule for m in down] == [2]  # switch side still alive

    def test_dead_endpoint_recovers_after_restore(self):
        # Reliable channel, no drops: the dead receiver swallows data and
        # returns no acks, so the sender retries until the restore.
        fm = ChannelFaultModel()
        scheduler = EventScheduler()
        channel, up, _ = make_channel(scheduler, fault_model=fm, max_retries=None)
        channel.set_endpoint_alive("up", False)
        channel.send_to_controller(flow_mod(5))
        scheduler.run(until=0.05)
        assert up == []
        assert channel.retries_up > 0
        channel.set_endpoint_alive("up", True)
        scheduler.run()
        assert [m.rule for m in up] == [5]  # exactly once, post-restore
        assert channel.pending_messages() == []

    def test_drain_pending_reconciles_delivered_and_lost(self):
        # Message A's data arrives but its ack is dropped (the receiver
        # has seen its sequence number); message B's data is dropped
        # outright.  Draining mid-flight must settle A as delivered
        # (completion callback fires) and B as permanently lost.
        fm = ChannelFaultModel(drop_pattern=[False, True, True])
        scheduler = EventScheduler()
        channel, up, _ = make_channel(
            scheduler, fault_model=fm, max_retries=None, retx_timeout_s=0.1,
        )
        acked = []
        lost = []
        channel.on_lost = lambda direction, message: lost.append(message.rule)
        channel.send_to_controller(flow_mod(1), on_acked=lambda: acked.append(1))
        channel.send_to_controller(flow_mod(2), on_acked=lambda: acked.append(2))
        scheduler.run(until=0.01)  # before the first retransmit timer
        assert [m.rule for m in up] == [1]
        assert acked == []  # A's ack was dropped
        drained = channel.drain_pending()
        assert drained == {"delivered": 1, "lost": 1}
        assert acked == [1]
        assert lost == [2]
        assert channel.lost_up == 1
        assert channel.pending_messages() == []
        # No timers left: the scheduler must go quiet immediately.
        scheduler.run()
        assert channel.counters()["retries_up"] == 0
