"""Unit tests for the observability layer (registry, trace, profile, CLI)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.timeline import rate_timeline, records_from_trace
from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.obs.profile import Profiler, STAGE_HISTOGRAM
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
)
from repro.obs.trace import PacketTracer, TraceKind, records_like


class _FakePacket:
    def __init__(self, packet_id, flow_id=0, via_authority=False):
        self.packet_id = packet_id
        self.flow_id = flow_id
        self.via_authority = via_authority
        self.via_controller = False


# -- registry ---------------------------------------------------------------------

class TestRegistry:
    def test_counter_children_are_bound_and_labelled(self):
        registry = MetricsRegistry()
        child = registry.counter("packets_total", switch="s0")
        child.inc()
        child.inc(2)
        assert registry.counter("packets_total", switch="s0") is child
        assert registry.value("packets_total", switch="s0") == 3
        assert registry.value("packets_total", switch="s1") is None
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"packets_total{switch=s0}": 3}

    def test_sum_counters_folds_label_children(self):
        registry = MetricsRegistry()
        registry.counter("drops_total", reason="a").inc(2)
        registry.counter("drops_total", reason="b").inc(3)
        registry.counter("other_total").inc(10)
        assert registry.sum_counters("drops_total") == 5

    def test_gauge_set_and_merge_takes_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(4)
        b.gauge("depth").set(9)
        merged = MetricsRegistry.merged(a, b)
        assert merged.value("depth") == 9

    def test_disabled_registry_is_noop_and_empty(self):
        registry = MetricsRegistry(enabled=False)
        child = registry.counter("x_total")
        assert child is NULL_METRIC
        child.inc()
        child.set(5)
        child.observe(0.1)
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_snapshot_excludes_prefixes(self):
        registry = MetricsRegistry()
        registry.counter("keep_total").inc()
        registry.histogram("profile_stage_seconds", stage="x").observe(0.1)
        snapshot = registry.snapshot(exclude_prefixes=("profile_",))
        assert "keep_total" in snapshot["counters"]
        assert snapshot["histograms"] == {}

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(7)
        path = tmp_path / "metrics.json"
        registry.write_json(path, experiment="X1")
        document = json.loads(path.read_text())
        assert document["experiment"] == "X1"
        assert document["metrics"]["counters"]["a_total"] == 7

    def test_histogram_mismatched_bounds_refuse_to_merge(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestHistogramQuantileBoundaries:
    def test_empty_histogram_has_no_quantile(self):
        assert Histogram().quantile(0.5) is None

    def test_q_outside_unit_interval_rejected(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(-0.01)
        with pytest.raises(ValueError):
            hist.quantile(1.01)

    def test_q0_and_q1_are_observed_extremes(self):
        hist = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 3.0, 42.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 42.0

    def test_single_observation_every_quantile_is_it(self):
        hist = Histogram(bounds=(1.0, 10.0))
        hist.observe(7.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 7.0

    def test_quantiles_clamped_after_merge(self):
        # After a merge the combined min/max must still bound every
        # quantile, even where the winning bucket's edges lie outside
        # the merged observed range.
        low, high = Histogram(bounds=(1.0, 10.0)), Histogram(bounds=(1.0, 10.0))
        low.observe(0.25)
        low.observe(0.5)
        high.observe(20.0)
        low.merge_from(high)
        assert low.count == 3
        assert low.quantile(0.0) == 0.25
        assert low.quantile(1.0) == 20.0
        for q in (0.1, 0.5, 0.9):
            assert 0.25 <= low.quantile(q) <= 20.0

    def test_merge_into_empty_preserves_quantiles(self):
        empty, full = Histogram(), Histogram()
        full.observe(2e-3)
        empty.merge_from(full)
        assert empty.quantile(0.0) == 2e-3
        assert empty.quantile(1.0) == 2e-3


# -- tracer -----------------------------------------------------------------------

class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = PacketTracer(enabled=False)
        tracer.record(0.0, TraceKind.INGRESS, _FakePacket(1))
        assert len(tracer) == 0
        assert tracer.recorded == 0

    def test_ring_buffer_truncates_oldest(self):
        tracer = PacketTracer(capacity=3, enabled=True)
        for index in range(5):
            tracer.record(float(index), TraceKind.INGRESS, _FakePacket(index))
        assert len(tracer) == 3
        assert tracer.truncated == 2
        assert tracer.evicted == 2
        assert [e.packet_id for e in tracer.events()] == [2, 3, 4]
        assert tracer.accounting()["truncated"] == 2
        assert tracer.accounting()["evicted"] == 2

    def test_accounting_counts_kinds(self):
        tracer = PacketTracer(enabled=True)
        tracer.record(0.0, TraceKind.INGRESS, _FakePacket(1))
        tracer.record(0.1, TraceKind.DELIVERED, _FakePacket(1))
        tracer.record(0.0, TraceKind.INGRESS, _FakePacket(2))
        tracer.record(0.2, TraceKind.DROPPED, _FakePacket(2), detail="link loss")
        tracer.record(0.3, TraceKind.DEGRADED, _FakePacket(3))
        accounting = tracer.accounting()
        assert accounting == {
            "ingress": 2, "delivered": 1, "dropped": 1,
            "degraded": 1, "evicted": 0, "truncated": 0,
        }

    def test_jsonl_export_roundtrip(self, tmp_path):
        tracer = PacketTracer(enabled=True)
        tracer.record(0.5, TraceKind.DELIVERED, _FakePacket(9), node="h1")
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(path, extra={"experiment": "E4"})
        assert count == 1
        row = json.loads(path.read_text().strip())
        assert row["kind"] == "delivered"
        assert row["packet_id"] == 9
        assert row["experiment"] == "E4"

    def test_records_like_accepts_events_and_dicts(self):
        tracer = PacketTracer(enabled=True)
        tracer.record(0.0, TraceKind.INGRESS, _FakePacket(1))
        tracer.record(1.0, TraceKind.DELIVERED, _FakePacket(1, via_authority=True))
        tracer.record(2.0, TraceKind.DROPPED, _FakePacket(2))
        from_events = records_like(tracer.events())
        assert len(from_events) == 2
        assert from_events[0].delivered and from_events[0].via_authority
        assert not from_events[1].delivered
        dicts = [
            {"time": 1.0, "kind": "delivered", "via_authority": True},
            {"time": 2.0, "kind": "dropped"},
            {"time": 0.0, "kind": "ingress"},
        ]
        from_dicts = records_like(dicts)
        assert [(r.finished_at, r.delivered) for r in from_dicts] == [
            (1.0, True), (2.0, False),
        ]

    def test_timeline_from_trace_matches_timeline_from_records(self):
        tracer = PacketTracer(enabled=True)
        for index in range(10):
            tracer.record(index * 0.1, TraceKind.DELIVERED, _FakePacket(index))
        series = rate_timeline(records_from_trace(tracer.events()), 0.2)
        assert len(series) > 0
        assert sum(y * 0.2 for y in series.y) == pytest.approx(10)


# -- profiler ---------------------------------------------------------------------

class TestProfiler:
    def test_disabled_profiler_records_nothing(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry=registry, enabled=False)
        with profiler.stage("lookup"):
            pass
        profiler.observe("lookup", 0.01)
        assert registry.value(STAGE_HISTOGRAM, stage="lookup") is None

    def test_enabled_profiler_populates_stage_histogram(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry=registry, enabled=True)
        with profiler.stage("lookup"):
            pass
        profiler.observe("lookup", 0.25)
        exported = registry.value(STAGE_HISTOGRAM, stage="lookup")
        assert exported["count"] == 2
        assert exported["max"] >= 0.25


# -- run context ------------------------------------------------------------------

class TestRunContext:
    def test_fresh_context_installs_and_isolates(self):
        previous = obs_context.current()
        try:
            first = fresh_run_context()
            first.metrics.counter("x_total").inc()
            second = fresh_run_context()
            assert obs_context.current() is second
            assert second.metrics.value("x_total") is None
            assert first.metrics.value("x_total") == 1
        finally:
            obs_context.install(previous)

    def test_flags_propagate(self):
        previous = obs_context.current()
        try:
            context = fresh_run_context(trace=True, profile=True)
            assert context.tracer.enabled
            assert context.profiler.enabled
            off = fresh_run_context(metrics_enabled=False)
            assert off.metrics.counter("x") is NULL_METRIC
        finally:
            obs_context.install(previous)


# -- network integration ----------------------------------------------------------

class TestNetworkMetrics:
    def _small_difane(self):
        from repro.core.controller import DifaneNetwork
        from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
        from repro.flowspace.packet import Packet
        from repro.net.topology import TopologyBuilder
        from repro.workloads.policies import routing_policy_for_topology

        topo = TopologyBuilder.star(3, hosts_per_leaf=1)
        rules, host_ips = routing_policy_for_topology(topo, FIVE_TUPLE_LAYOUT)
        dn = DifaneNetwork.build(
            topo, rules, FIVE_TUPLE_LAYOUT, authority_switches=["hub"],
        )
        packets = [
            Packet.from_fields(
                FIVE_TUPLE_LAYOUT,
                flow_id=index,
                nw_src=0x0A000000 | index,
                nw_dst=host_ips["h1"],
                nw_proto=6,
                tp_src=2000 + index,
                tp_dst=80,
            )
            for index in range(5)
        ]
        for index, packet in enumerate(packets):
            dn.send_at(index * 1e-3, "h0", packet)
        dn.run(until=1.0)
        return dn

    def test_difane_run_populates_registry_and_tracer(self):
        previous = obs_context.current()
        try:
            context = fresh_run_context(trace=True)
            dn = self._small_difane()
            metrics = context.metrics
            assert metrics.value("packets_injected_total") == 5
            assert metrics.value("packets_delivered_total") == len(
                dn.network.delivered()
            )
            # Pipeline stage counters saw every classification.
            assert metrics.sum_counters("pipeline_lookups_total") > 0
            # The difane stat mirrors equal the python-int counters.
            assert metrics.sum_counters("difane_cache_installs_sent_total") == sum(
                s.cache_installs_sent for s in dn.switches()
            )
            assert metrics.sum_counters("difane_redirects_handled_total") == sum(
                s.redirects_handled for s in dn.switches()
            )
            kinds = {event.kind for event in context.tracer.events()}
            assert TraceKind.INGRESS in kinds
            assert TraceKind.DELIVERED in kinds
            assert TraceKind.REDIRECT in kinds or TraceKind.CACHE_HIT in kinds
        finally:
            obs_context.install(previous)

    def test_profile_run_records_stage_timings(self):
        previous = obs_context.current()
        try:
            context = fresh_run_context(profile=True)
            self._small_difane()
            snapshot = context.metrics.snapshot()
            profiled = [
                key for key in snapshot["histograms"]
                if key.startswith(STAGE_HISTOGRAM)
            ]
            assert profiled, "profiling produced no stage histograms"
            # And the canonical document excludes them.
            clean = context.metrics.snapshot(exclude_prefixes=("profile_",))
            assert all(
                not key.startswith(STAGE_HISTOGRAM)
                for key in clean["histograms"]
            )
        finally:
            obs_context.install(previous)


# -- CLI --------------------------------------------------------------------------

class TestCli:
    def test_metrics_and_trace_out(self, tmp_path, capsys):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "run", "E4", "--quick", "--no-plot",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        document = json.loads(metrics_path.read_text())
        assert document["schema"] == "difane-metrics/1"
        assert document["experiment"] == "E4-delay"
        assert document["metrics"]["counters"]["packets_injected_total"] > 0
        assert document["trace"]["truncated"] == 0
        rows = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert rows and all(row["experiment"] == "E4" for row in rows)
        kinds = {row["kind"] for row in rows}
        assert "ingress" in kinds and "delivered" in kinds
