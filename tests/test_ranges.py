"""Unit and property tests for range ↔ prefix expansion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowspace import range_to_ternaries, ternary_to_range, Ternary
from repro.flowspace.ranges import range_expansion_cost


class TestRangeToTernaries:
    def test_full_range_is_single_wildcard(self):
        result = range_to_ternaries(0, 15, 4)
        assert result == [Ternary.wildcard(4)]

    def test_single_point(self):
        result = range_to_ternaries(5, 5, 4)
        assert result == [Ternary.exact(5, 4)]

    def test_classic_ephemeral(self):
        # [1024, 65535] over 16 bits: the textbook 6-prefix expansion.
        result = range_to_ternaries(1024, 65535, 16)
        assert len(result) == 6

    def test_worst_case_bound(self):
        # [1, 2^w - 2] is the classic worst case: 2w - 2 prefixes.
        width = 8
        result = range_to_ternaries(1, (1 << width) - 2, width)
        assert len(result) == 2 * width - 2

    def test_exact_cover_small(self):
        low, high, width = 3, 12, 4
        pieces = range_to_ternaries(low, high, width)
        covered = sorted(v for piece in pieces for v in piece.enumerate())
        assert covered == list(range(low, high + 1))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_to_ternaries(5, 3, 4)
        with pytest.raises(ValueError):
            range_to_ternaries(0, 16, 4)

    def test_cost_helper(self):
        assert range_expansion_cost(0, 15, 4) == 1
        assert range_expansion_cost(1, 14, 4) == 6


class TestTernaryToRange:
    def test_prefix_gives_range(self):
        t = Ternary.from_prefix(0b1010 << 4, 4, 8)
        assert ternary_to_range(t) == (0xA0, 0xAF)

    def test_wildcard(self):
        assert ternary_to_range(Ternary.wildcard(4)) == (0, 15)

    def test_exact(self):
        assert ternary_to_range(Ternary.exact(9, 4)) == (9, 9)

    def test_non_prefix_is_none(self):
        assert ternary_to_range(Ternary.from_string("1x0x")) is None


@settings(max_examples=200)
@given(
    data=st.tuples(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    ).map(sorted),
    point=st.integers(min_value=0, max_value=255),
)
def test_prop_expansion_covers_exactly(data, point):
    low, high = data
    pieces = range_to_ternaries(low, high, 8)
    in_pieces = any(p.matches(point) for p in pieces)
    assert in_pieces == (low <= point <= high)
    # Pieces must be pairwise disjoint (each point covered exactly once).
    assert sum(1 for p in pieces if p.matches(point)) <= 1


@settings(max_examples=100)
@given(
    data=st.tuples(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    ).map(sorted)
)
def test_prop_expansion_minimal_bound(data):
    low, high = data
    pieces = range_to_ternaries(low, high, 8)
    assert 1 <= len(pieces) <= 2 * 8 - 2 or (low, high) == (0, 255)
    total = sum(p.size() for p in pieces)
    assert total == high - low + 1
