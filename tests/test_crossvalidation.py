"""Cross-validation between independent implementations of the same thing.

Two pairs of implementations must agree:

1. the trace-driven wildcard cache simulator vs the event-driven DIFANE
   ingress cache (same policy, same header stream, same capacity, both
   LRU) — miss counts must match up to in-flight install races, which a
   spaced-out replay eliminates;
2. SetField-rewriting policies must behave identically through DIFANE's
   cached path and the proactive baseline.
"""

import pytest

from repro.baselines import ProactiveNetwork, simulate_wildcard_cache
from repro.core import DifaneNetwork
from repro.flowspace import (
    Drop,
    FIVE_TUPLE_LAYOUT,
    Forward,
    Match,
    Packet,
    Rule,
    SetField,
    Ternary,
)
from repro.net import TopologyBuilder
from repro.workloads.classbench import generate_classbench
from repro.workloads.traffic import flow_headers_for_policy, packet_sequence

L = FIVE_TUPLE_LAYOUT


class TestCacheSimulatorVsEventDriven:
    @pytest.mark.parametrize("cache_size", [25, 100])
    def test_miss_rates_agree(self, cache_size):
        policy = generate_classbench("acl", count=200, seed=29, layout=L)
        flows = flow_headers_for_policy(policy, 300, seed=30)
        headers = packet_sequence(flows, 1500, alpha=1.0, seed=31)

        predicted = simulate_wildcard_cache(policy, L, headers, cache_size)

        topo = TopologyBuilder.star(2, hosts_per_leaf=1)
        dn = DifaneNetwork.build(
            topo, policy, L,
            authority_switches=["hub"],
            cache_capacity=cache_size,
        )
        # Space packets out far beyond the install latency so the live
        # system sees the same sequential cache state the simulator does.
        for index, bits in enumerate(headers):
            packet = Packet(L, bits)
            dn.network.scheduler.schedule_at(
                index * 5e-3, dn.network.inject_from_host, "h0", packet
            )
        dn.run()
        ingress = dn.switch("s0")
        live_misses = ingress.redirects_out
        # The simulators share LRU semantics; small divergence can come
        # from fragment-shape differences (win_fragment subtraction order
        # inside the partition), so allow a tight tolerance.
        assert live_misses == pytest.approx(predicted.misses, rel=0.1, abs=5)


class TestSetFieldSemantics:
    def build_policy(self, host_ips):
        """A load-balancer style policy: rewrite dst IP, then forward."""
        vip = 0x0A00FF01
        hosts = sorted(host_ips)
        backend_a, backend_b = hosts[0], hosts[1]
        rules = [
            # VIP traffic from even sources -> backend A.
            Rule(
                Match.build(L, nw_dst=Ternary.exact(vip, 32),
                            nw_src="x" * 31 + "0"),
                priority=100,
                actions=[SetField("nw_dst", host_ips[backend_a]),
                         Forward(backend_a)],
            ),
            # VIP traffic from odd sources -> backend B.
            Rule(
                Match.build(L, nw_dst=Ternary.exact(vip, 32),
                            nw_src="x" * 31 + "1"),
                priority=99,
                actions=[SetField("nw_dst", host_ips[backend_b]),
                         Forward(backend_b)],
            ),
            Rule(Match.any(L), 0, Drop()),
        ]
        return vip, backend_a, backend_b, rules

    def test_rewrites_survive_caching(self):
        topo = TopologyBuilder.star(3, hosts_per_leaf=1)
        host_ips = {h: 0x0A000001 + i for i, h in enumerate(topo.hosts())}
        vip, backend_a, backend_b, rules = self.build_policy(host_ips)
        dn = DifaneNetwork.build(
            topo, rules, L, authority_switches=["hub"], cache_capacity=64,
        )
        pn = ProactiveNetwork.build(topo, rules, L)

        outcomes = {"difane": [], "proactive": []}
        for system, facade in (("difane", dn), ("proactive", pn)):
            for source in (2, 3, 4, 5, 6, 7):
                packet = Packet.from_fields(
                    L, nw_src=source, nw_dst=vip, nw_proto=6,
                    tp_src=1000 + source, tp_dst=80,
                )
                facade.send("h2", packet)
                facade.run()
                record = facade.network.deliveries[-1]
                outcomes[system].append(
                    (record.delivered, record.endpoint, packet.field("nw_dst"))
                )
        assert outcomes["difane"] == outcomes["proactive"]
        # Even sources went to backend A, odd to backend B.
        endpoints = [endpoint for _, endpoint, _ in outcomes["difane"]]
        assert endpoints == [backend_a, backend_b] * 3
        # And the rewrite actually happened on the wire.
        for _, endpoint, dst in outcomes["difane"]:
            assert dst == host_ips[endpoint]

    def test_second_flow_hits_cache_with_rewrite(self):
        topo = TopologyBuilder.star(3, hosts_per_leaf=1)
        host_ips = {h: 0x0A000001 + i for i, h in enumerate(topo.hosts())}
        vip, backend_a, _, rules = self.build_policy(host_ips)
        dn = DifaneNetwork.build(
            topo, rules, L, authority_switches=["hub"], cache_capacity=64,
        )
        for sport in (1111, 2222):
            packet = Packet.from_fields(
                L, nw_src=2, nw_dst=vip, nw_proto=6, tp_src=sport, tp_dst=80
            )
            dn.send("h2", packet)
            dn.run()
        ingress = dn.switch("s2")
        assert ingress.cache_hits == 1
        assert dn.network.delivered()[-1].endpoint == backend_a
