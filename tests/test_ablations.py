"""Tests for the extended ablation experiments (scaled down)."""

import pytest

from repro.experiments.ablations import (
    run_eviction_ablation,
    run_partition_granularity,
    run_prefetch_ablation,
    run_zipf_sensitivity,
)


class TestEvictionAblation:
    def test_all_policies_reported(self):
        result = run_eviction_ablation(flows=120)
        assert [row[0] for row in result.table_rows] == ["lru", "fifo", "random"]
        for row in result.table_rows:
            assert 0.0 <= float(row[1]) <= 1.0

    def test_undersized_cache_actually_evicts(self):
        result = run_eviction_ablation(cache_capacity=4, flows=150)
        assert any(int(row[2]) > 0 for row in result.table_rows)


class TestPrefetchAblation:
    def test_tradeoff_direction(self):
        result = run_prefetch_ablation(prefetch_levels=[1, 8], flows=300)
        redirects = result.series_by_label("redirects")
        installs = result.series_by_label("cache installs")
        assert redirects.y[1] <= redirects.y[0]
        assert installs.y[1] >= installs.y[0]

    def test_hit_rate_not_degraded(self):
        result = run_prefetch_ablation(prefetch_levels=[1, 4], flows=300)
        hit = result.series_by_label("hit rate")
        assert hit.y[1] >= hit.y[0] - 1e-9


class TestZipfSensitivity:
    def test_wildcard_dominates_at_all_skews(self):
        result = run_zipf_sensitivity(
            alphas=[0.8, 1.2], n_flows=300, n_packets=3000
        )
        wildcard = result.series_by_label("DIFANE wildcard cache")
        microflow = result.series_by_label("microflow cache")
        for w, m in zip(wildcard.y, microflow.y):
            assert w < m

    def test_skew_helps_both(self):
        result = run_zipf_sensitivity(
            alphas=[0.6, 1.2], n_flows=300, n_packets=3000
        )
        for series in result.series:
            assert series.y[1] < series.y[0]


class TestPartitionGranularity:
    def test_overhead_monotone(self):
        result = run_partition_granularity(per_authority=[1, 4])
        overhead = result.series_by_label("duplication factor")
        assert overhead.y[0] <= overhead.y[1]

    def test_imbalance_bounded(self):
        result = run_partition_granularity(per_authority=[1, 2, 4])
        imbalance = result.series_by_label("load imbalance (max/mean)")
        assert all(1.0 <= ratio < 4.0 for ratio in imbalance.y)
