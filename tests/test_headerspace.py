"""Unit and property tests for header-space algebra."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowspace import HeaderSpace, Ternary

W = 8

ternaries = st.builds(
    lambda v, m: Ternary(v & m, m, W),
    st.integers(min_value=0, max_value=(1 << W) - 1),
    st.integers(min_value=0, max_value=(1 << W) - 1),
)
points = st.integers(min_value=0, max_value=(1 << W) - 1)


class TestConstruction:
    def test_empty(self):
        space = HeaderSpace.empty(W)
        assert space.is_empty()
        assert space.total_size() == 0

    def test_full(self):
        space = HeaderSpace.full(W)
        assert not space.is_empty()
        assert space.total_size() == 1 << W

    def test_of_requires_members(self):
        with pytest.raises(ValueError):
            HeaderSpace.of()

    def test_add_width_checked(self):
        space = HeaderSpace.empty(W)
        with pytest.raises(ValueError):
            space.add(Ternary.wildcard(4))

    def test_add_covered_member_is_noop(self):
        space = HeaderSpace.of(Ternary.wildcard(W))
        space.add(Ternary.exact(3, W))
        assert len(space) == 1

    def test_add_absorbs_smaller_members(self):
        space = HeaderSpace.of(Ternary.exact(3, W))
        space.add(Ternary.wildcard(W))
        assert len(space) == 1
        assert space.members[0].is_wildcard()

    def test_copy_is_independent(self):
        space = HeaderSpace.of(Ternary.exact(1, W))
        clone = space.copy()
        clone.add(Ternary.exact(2, W))
        assert len(space) == 1
        assert len(clone) == 2


class TestQueries:
    def test_contains_bits(self):
        space = HeaderSpace.of(Ternary.from_string("0000xxxx"))
        assert space.contains_bits(0x05)
        assert not space.contains_bits(0xF0)

    def test_covers_exact(self):
        space = HeaderSpace.of(Ternary.from_string("0xxxxxxx"))
        assert space.covers(Ternary.from_string("00xxxxxx"))
        assert not space.covers(Ternary.wildcard(W))

    def test_covers_needs_multiple_members(self):
        space = HeaderSpace.of(
            Ternary.from_string("0xxxxxxx"), Ternary.from_string("1xxxxxxx")
        )
        assert space.covers(Ternary.wildcard(W))

    def test_intersects(self):
        space = HeaderSpace.of(Ternary.from_string("0000xxxx"))
        assert space.intersects(Ternary.from_string("00000000"))
        assert not space.intersects(Ternary.from_string("1111xxxx"))

    def test_total_size_deduplicates_overlap(self):
        space = HeaderSpace(W)
        # Overlapping members injected directly: 0xxxxxxx ∪ 00xxxxxx.
        space._members.append(Ternary.from_string("0xxxxxxx"))
        space._members.append(Ternary.from_string("00xxxxxx"))
        assert space.total_size() == 128

    def test_sample_in_space(self):
        rng = random.Random(3)
        space = HeaderSpace.of(Ternary.from_string("01xxxxxx"))
        for _ in range(20):
            assert space.contains_bits(space.sample(rng))

    def test_sample_empty_is_none(self):
        assert HeaderSpace.empty(W).sample(random.Random(0)) is None


class TestAlgebra:
    def test_subtract_then_membership(self):
        space = HeaderSpace.full(W).subtract(Ternary.from_string("1xxxxxxx"))
        assert space.total_size() == 128
        assert space.contains_bits(0x00)
        assert not space.contains_bits(0x80)

    def test_subtract_all_short_circuits(self):
        space = HeaderSpace.full(W).subtract_all(
            [Ternary.from_string("0xxxxxxx"), Ternary.from_string("1xxxxxxx"),
             Ternary.exact(5, W)]
        )
        assert space.is_empty()

    def test_intersection(self):
        space = HeaderSpace.of(
            Ternary.from_string("0xxxxxxx"), Ternary.from_string("11xxxxxx")
        )
        narrowed = space.intersection(Ternary.from_string("x1xxxxxx"))
        assert narrowed.contains_bits(0b01000000)
        assert narrowed.contains_bits(0b11000000)
        assert not narrowed.contains_bits(0b00000000)


@settings(max_examples=150)
@given(a=ternaries, b=ternaries, c=ternaries, p=points)
def test_prop_subtract_chain_membership(a, b, c, p):
    """Membership after (a ∪ b) − c matches the pointwise formula."""
    space = HeaderSpace(W)
    space._members.extend([a, b])
    result = space.subtract(c)
    expected = (a.matches(p) or b.matches(p)) and not c.matches(p)
    assert result.contains_bits(p) == expected


@settings(max_examples=150)
@given(members=st.lists(ternaries, min_size=1, max_size=5), probe=ternaries)
def test_prop_covers_equals_exhaustive_check(members, probe):
    space = HeaderSpace(W)
    for member in members:
        space.add(member)
    exhaustive = all(
        space.contains_bits(bits) for bits in probe.enumerate()
    )
    assert space.covers(probe) == exhaustive


@settings(max_examples=150)
@given(members=st.lists(ternaries, min_size=0, max_size=4))
def test_prop_total_size_counts_distinct_points(members):
    space = HeaderSpace(W)
    for member in members:
        space.add(member)
    brute = sum(1 for bits in range(1 << W) if space.contains_bits(bits))
    assert space.total_size() == brute
