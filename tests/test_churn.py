"""Tests for the policy-churn workload driver."""

import random

import pytest

from repro.core import DifaneNetwork
from repro.core.dynamics import ChurnWorkload
from repro.flowspace import FIVE_TUPLE_LAYOUT, RuleTable
from repro.net import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def build():
    topo = TopologyBuilder.linear(3, hosts_per_switch=1)
    rules, _ = routing_policy_for_topology(topo, L)
    dn = DifaneNetwork.build(
        topo, rules, L, authority_switches=["s1"],
        cache_capacity=32, redirect_rate=None,
    )
    return dn


class TestChurn:
    def test_steps_recorded(self):
        dn = build()
        churn = ChurnWorkload(dn.controller, L, seed=1)
        events = churn.run(10)
        assert len(events) == 10
        assert churn.events == events
        assert all(e.kind in ("insert", "delete") for e in events)

    def test_first_step_is_insert(self):
        dn = build()
        churn = ChurnWorkload(dn.controller, L, seed=1)
        assert churn.step().kind == "insert"

    def test_deterministic_by_seed(self):
        kinds_a = [e.kind for e in ChurnWorkload(build().controller, L, seed=3).run(20)]
        kinds_b = [e.kind for e in ChurnWorkload(build().controller, L, seed=3).run(20)]
        assert kinds_a == kinds_b

    def test_policy_stays_consistent(self):
        dn = build()
        base_size = len(dn.controller.policy)
        churn = ChurnWorkload(dn.controller, L, seed=2)
        events = churn.run(30)
        inserts = sum(1 for e in events if e.kind == "insert")
        deletes = sum(1 for e in events if e.kind == "delete")
        assert len(dn.controller.policy) == base_size + inserts - deletes

    def test_semantics_preserved_after_churn(self):
        dn = build()
        ChurnWorkload(dn.controller, L, seed=4).run(25)
        oracle = RuleTable(L, dn.controller.policy)
        rng = random.Random(0)
        for _ in range(150):
            bits = rng.getrandbits(L.width)
            state = next(
                s for s in dn.controller._states.values()
                if s.partition.region.matches(bits)
            )
            got = dn.switch(state.owners[0]).pipeline.authority.table.lookup_bits(bits)
            expected = oracle.lookup_bits(bits)
            if expected is None:
                assert got is None
            else:
                assert got is not None
                assert (got.root_origin() is expected
                        or got.actions == expected.actions)

    def test_totals(self):
        dn = build()
        churn = ChurnWorkload(dn.controller, L, seed=5)
        churn.run(10)
        assert churn.total_control_messages() == sum(
            e.control_messages for e in churn.events
        )
        assert churn.total_flushed() >= 0

    def test_insert_fraction_validation(self):
        dn = build()
        with pytest.raises(ValueError):
            ChurnWorkload(dn.controller, L, insert_fraction=1.5)
