"""Property tests for the memory-bounded sketches (obs/sketch.py).

The sketches replace exact per-packet state in million-host soaks, so
their guarantees are load-bearing: every claim the module docstring
makes — the tracked rank-error bound, merge exactness, Space-Saving
containment — is pinned here against brute-force oracles.
"""

from __future__ import annotations

from collections import Counter as TallyCounter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.obs.registry import MetricsRegistry, NULL_METRIC
from repro.obs.sketch import (
    EXPORT_QUANTILES,
    FixedWidthHistogram,
    QuantileSketch,
    SpaceSavingSketch,
    set_sketch_mode,
    sketch_enabled,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Dyadic rationals: exact float arithmetic, so oracle sums are exact.
VALUES = st.lists(
    st.integers(0, 4096).map(lambda n: n / 64), min_size=0, max_size=800
)
SMALL_K = st.sampled_from([8, 16, 32, 64])


def exact_rank(values, x) -> int:
    return sum(1 for v in values if v <= x)


# -- QuantileSketch ----------------------------------------------------------


@SETTINGS
@given(values=VALUES, k=SMALL_K)
def test_rank_error_within_tracked_bound(values, k):
    """Every rank query lands within the sketch's own error_weight."""
    sketch = QuantileSketch(k=k)
    for v in values:
        sketch.observe(v)
    assert sketch.count == len(values)
    probes = set(values) | {-1.0, 0.0, 31.5, 1e9}
    for x in probes:
        assert abs(sketch.rank(x) - exact_rank(values, x)) <= sketch.rank_error_bound()


@SETTINGS
@given(values=VALUES, k=SMALL_K)
def test_quantiles_bounded_and_extremes_exact(values, k):
    sketch = QuantileSketch(k=k)
    for v in values:
        sketch.observe(v)
    if not values:
        assert sketch.quantile(0.5) is None
        return
    assert sketch.quantile(0.0) == min(values)
    assert sketch.quantile(1.0) == max(values)
    bound = sketch.quantile_rank_bound()
    for q in EXPORT_QUANTILES:
        estimate = sketch.quantile(q)
        assert min(values) <= estimate <= max(values)
        if 0.0 < q < 1.0:
            # With ties, "the rank of the estimate" is the interval
            # [#(< estimate), #(<= estimate)]; widened by the bound it
            # must contain the target rank q*count.
            less = sum(1 for v in values if v < estimate)
            target = q * len(values)
            assert less - bound <= target <= exact_rank(values, estimate) + bound


@SETTINGS
@given(values=VALUES, k=SMALL_K, cut=st.floats(0.0, 1.0))
def test_merge_answers_for_the_concatenated_stream(values, k, cut):
    """merge(a, b) answers rank queries on a ++ b within the merged bound."""
    split = int(len(values) * cut)
    a, b = QuantileSketch(k=k), QuantileSketch(k=k)
    for v in values[:split]:
        a.observe(v)
    for v in values[split:]:
        b.observe(v)
    a.merge_from(b)
    assert a.count == len(values)
    for x in set(values) | {0.0}:
        assert abs(a.rank(x) - exact_rank(values, x)) <= a.rank_error_bound()


@SETTINGS
@given(values=VALUES, k=SMALL_K, shards=st.integers(1, 5))
def test_sharded_merge_is_shard_count_invariant_in_bound(values, k, shards):
    """However the stream is sharded, the merged bound stays honest."""
    parts = [QuantileSketch(k=k) for _ in range(shards)]
    for index, v in enumerate(values):
        parts[index % shards].observe(v)
    merged = QuantileSketch(k=k)
    for part in parts:
        merged.merge_from(part)
    assert merged.count == len(values)
    for x in set(values):
        assert abs(merged.rank(x) - exact_rank(values, x)) <= merged.rank_error_bound()


@SETTINGS
@given(
    value=st.integers(0, 100).map(lambda n: n / 4),
    count=st.integers(0, 3000),
    k=SMALL_K,
)
def test_observe_repeated_is_bit_identical_to_looping(value, count, k):
    looped, batched = QuantileSketch(k=k), QuantileSketch(k=k)
    for _ in range(count):
        looped.observe(value)
    batched.observe_repeated(value, count)
    assert looped._levels == batched._levels
    assert looped._parity == batched._parity
    assert looped.error_weight == batched.error_weight
    assert looped.count == batched.count
    assert (looped.min, looped.max) == (batched.min, batched.max)


def test_quantile_sketch_is_deterministic_and_memory_bounded():
    a, b = QuantileSketch(k=32), QuantileSketch(k=32)
    for i in range(50_000):
        v = (i * 2654435761 % 100_000) / 7.0
        a.observe(v)
        b.observe(v)
    assert a.export() == b.export()
    # k * (levels + 1) is a generous cap; the point is "not O(n)".
    assert a.retained() <= 32 * (len(a._levels) + 1)
    assert a.retained() < 2_000


def test_quantile_sketch_rejects_bad_parameters():
    with pytest.raises(ValueError):
        QuantileSketch(k=7)
    with pytest.raises(ValueError):
        QuantileSketch(k=9)
    sketch = QuantileSketch()
    sketch.observe(1.0)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    with pytest.raises(ValueError):
        sketch.observe_repeated(1.0, -1)
    with pytest.raises(ValueError):
        sketch.merge_from(QuantileSketch(k=8))


# -- SpaceSavingSketch -------------------------------------------------------

KEYS = st.lists(st.integers(0, 40), min_size=0, max_size=600)


@SETTINGS
@given(keys=KEYS, k=st.integers(1, 12))
def test_space_saving_contains_everything_above_threshold(keys, k):
    sketch = SpaceSavingSketch(k=k)
    for key in keys:
        sketch.offer(key)
    true = TallyCounter(str(key) for key in keys)
    threshold = sketch.guarantee_threshold()
    for key, count in true.items():
        if count > threshold:
            assert key in sketch
    # Overestimates never underestimate: entry count >= true count, and
    # count - error <= true count.
    for key, count, error in sketch.entries():
        assert count >= true[key]
        assert count - error <= true[key]
    assert sketch.total == len(keys)


@SETTINGS
@given(keys=KEYS, k=st.integers(1, 12), shards=st.integers(1, 4))
def test_space_saving_merge_keeps_the_guarantee(keys, k, shards):
    parts = [SpaceSavingSketch(k=k) for _ in range(shards)]
    for index, key in enumerate(keys):
        parts[index % shards].offer(key)
    merged = SpaceSavingSketch(k=k)
    for part in parts:
        merged.merge_from(part)
    true = TallyCounter(str(key) for key in keys)
    threshold = merged.guarantee_threshold()
    for key, count in true.items():
        if count > threshold:
            assert key in merged
    for key, count, error in merged.entries():
        assert count >= true[key]
    assert merged.total == len(keys)


def test_space_saving_batch_offer_and_determinism():
    a, b = SpaceSavingSketch(k=4), SpaceSavingSketch(k=4)
    for key, count in [("x", 5), ("y", 3), ("z", 2), ("w", 2), ("v", 1)]:
        a.offer(key, count)
        for _ in range(count):
            b.offer(key)
    assert a.entries()[0] == b.entries()[0] == ("x", 5, 0)
    assert a.total == b.total == 13


# -- FixedWidthHistogram -----------------------------------------------------


@SETTINGS
@given(
    values=st.lists(st.integers(-3, 200), min_size=0, max_size=300),
    cut=st.floats(0.0, 1.0),
)
def test_fixed_histogram_merge_equals_concatenation(values, cut):
    split = int(len(values) * cut)
    a = FixedWidthHistogram(width=4.0, bins=16)
    b = FixedWidthHistogram(width=4.0, bins=16)
    whole = FixedWidthHistogram(width=4.0, bins=16)
    for v in values[:split]:
        a.observe(v)
    for v in values[split:]:
        b.observe(v)
    for v in values:
        whole.observe(v)
    a.merge_from(b)
    assert a.export() == whole.export()


def test_fixed_histogram_buckets_overflow_and_clamp():
    hist = FixedWidthHistogram(width=1.0, lo=0.0, bins=4)
    hist.observe(-5.0)       # clamps into bucket 0
    hist.observe(0.5)
    hist.observe(3.9)
    hist.observe_repeated(100.0, 2)  # overflow bucket
    export = hist.export()
    assert export["buckets"] == {"0": 2, "3": 1, "+inf": 2}
    assert export["count"] == 5
    assert export["min"] == -5.0 and export["max"] == 100.0
    with pytest.raises(ValueError):
        hist.merge_from(FixedWidthHistogram(width=2.0, bins=4))
    with pytest.raises(ValueError):
        FixedWidthHistogram(width=0.0)


# -- registry integration ----------------------------------------------------


def test_registry_sections_appear_only_when_sketches_exist():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    snapshot = registry.snapshot()
    assert sorted(snapshot) == ["counters", "gauges", "histograms"]
    registry.quantile_sketch("delay", k=16).observe(1.0)
    registry.top_k("hot", k=4).offer("a")
    registry.fixed_histogram("hops", width=1.0, bins=8).observe(2)
    snapshot = registry.snapshot()
    assert sorted(snapshot) == [
        "counters", "fixed_histograms", "gauges", "histograms",
        "sketches", "top_k",
    ]
    assert snapshot["sketches"]["delay"]["count"] == 1
    assert snapshot["top_k"]["hot"]["entries"][0]["key"] == "a"
    assert snapshot["fixed_histograms"]["hops"]["count"] == 1


def test_registry_merge_preserves_sketch_shape_and_content():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.quantile_sketch("delay", k=16).observe(1.0)
    b.quantile_sketch("delay", k=16).observe_repeated(2.0, 3)
    b.top_k("hot", k=4).offer("x", 5)
    merged = MetricsRegistry.merged(a, b)
    sketch = merged.value("delay")
    assert sketch["count"] == 4 and sketch["k"] == 16
    assert merged.value("hot")["entries"][0]["count"] == 5
    # Merging mismatched k raises (fresh() preserved the shape).
    c = MetricsRegistry()
    c.quantile_sketch("delay", k=32).observe(1.0)
    with pytest.raises(ValueError):
        MetricsRegistry.merged(a, c)


def test_disabled_registry_hands_out_null_sketches():
    registry = MetricsRegistry(enabled=False)
    assert registry.quantile_sketch("d") is NULL_METRIC
    assert registry.top_k("t") is NULL_METRIC
    assert registry.fixed_histogram("f", width=1.0) is NULL_METRIC
    # The null metric accepts the full sketch protocol as no-ops.
    NULL_METRIC.observe_repeated(1.0, 5)
    NULL_METRIC.offer("key", 2)
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_sketch_mode_flag_roundtrip():
    assert not sketch_enabled()
    try:
        set_sketch_mode(True)
        assert sketch_enabled()
    finally:
        set_sketch_mode(False)
    assert not sketch_enabled()
