"""Tests for shadow pruning, fat-tree topologies and load rebalancing."""

import random

import pytest

from repro.core import DifaneNetwork
from repro.core.optimize import prune_shadowed_rules, shadow_report
from repro.flowspace import (
    Drop,
    FIVE_TUPLE_LAYOUT,
    Forward,
    Match,
    Packet,
    Rule,
    RuleTable,
    TWO_FIELD_LAYOUT,
)
from repro.net import TopologyBuilder
from repro.workloads.classbench import generate_classbench
from repro.workloads.policies import routing_policy_for_topology

L2 = TWO_FIELD_LAYOUT
L5 = FIVE_TUPLE_LAYOUT


class TestShadowPruning:
    def test_detects_single_cover(self):
        wide = Rule(Match.build(L2, f1="0000xxxx"), 10, Forward("a"))
        hidden = Rule(Match.build(L2, f1="00001xxx"), 5, Forward("b"))
        live, dead = prune_shadowed_rules([wide, hidden], L2)
        assert live == [wide]
        assert dead == [hidden]

    def test_detects_union_cover(self):
        left = Rule(Match.build(L2, f1="0xxxxxxx"), 10, Forward("l"))
        right = Rule(Match.build(L2, f1="1xxxxxxx"), 9, Forward("r"))
        below = Rule(Match.any(L2), 1, Drop())
        live, dead = prune_shadowed_rules([left, right, below], L2)
        assert dead == [below]

    def test_pruning_preserves_semantics(self):
        rules = generate_classbench("fw", count=150, seed=51, layout=L5)
        # Inject some certainly-shadowed rules.
        clone = rules[0].derive(priority=0)
        with_dead = rules[:1] + [clone] + rules[1:]
        live, dead = prune_shadowed_rules(with_dead, L5)
        assert clone in dead
        original = RuleTable(L5, with_dead)
        pruned = RuleTable(L5, live)
        rng = random.Random(0)
        for _ in range(200):
            bits = rng.getrandbits(L5.width)
            a = original.lookup_bits(bits)
            b = pruned.lookup_bits(bits)
            if a is None:
                assert b is None
            else:
                assert b is not None and (
                    a is b or a.actions == b.actions
                )

    def test_report(self):
        wide = Rule(Match.any(L2), 10, Forward("a"))
        hidden = Rule(Match.build(L2, f1=1), 5, Forward("b"))
        report = shadow_report([wide, hidden], L2)
        assert report == {
            "total": 2, "live": 1, "shadowed": 1, "shadowed_fraction": 0.5,
        }

    def test_empty_policy(self):
        assert shadow_report([], L2)["shadowed_fraction"] == 0.0


class TestFatTree:
    def test_structure(self):
        topo = TopologyBuilder.fat_tree(k=4, hosts_per_edge=2)
        switches = topo.switches()
        assert len([s for s in switches if s.startswith("core")]) == 4
        assert len([s for s in switches if s.startswith("agg")]) == 8
        assert len([s for s in switches if s.startswith("edge")]) == 8
        assert len(topo.hosts()) == 16
        assert topo.is_connected()

    def test_edge_degree(self):
        topo = TopologyBuilder.fat_tree(k=4, hosts_per_edge=1)
        # Every edge switch: k/2 aggregation uplinks + hosts.
        for name in topo.switches():
            if name.startswith("edge"):
                assert topo.graph.degree[name] == 2 + 1

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError):
            TopologyBuilder.fat_tree(k=3)

    def test_runs_difane(self):
        topo = TopologyBuilder.fat_tree(k=2, hosts_per_edge=1)
        rules, host_ips = routing_policy_for_topology(topo, L5)
        dn = DifaneNetwork.build(
            topo, rules, L5, authority_count=1, cache_capacity=16,
        )
        hosts = sorted(host_ips)
        packet = Packet.from_fields(
            L5, nw_dst=host_ips[hosts[1]], nw_proto=6, tp_src=5, tp_dst=80
        )
        dn.send(hosts[0], packet)
        dn.run()
        assert dn.network.delivered()[0].endpoint == hosts[1]


class TestRebalancing:
    def build(self):
        topo = TopologyBuilder.star(4, hosts_per_leaf=1)
        rules, host_ips = routing_policy_for_topology(topo, L5)
        dn = DifaneNetwork.build(
            topo, rules, L5,
            authority_switches=["s0", "s1"],
            partitions_per_authority=4,
            cache_capacity=0,   # all traffic redirects: load is visible
            redirect_rate=None,
        )
        return dn, topo, host_ips

    def skewed_traffic(self, dn, host_ips, count=200, seed=61):
        """Hammer one destination so one partition gets hot."""
        rng = random.Random(seed)
        hosts = sorted(host_ips)
        hot = hosts[-1]
        for index in range(count):
            packet = Packet.from_fields(
                L5, nw_src=rng.getrandbits(32), nw_dst=host_ips[hot],
                nw_proto=6, tp_src=rng.randint(1024, 65535), tp_dst=80,
            )
            dn.send(hosts[0], packet)
        dn.run()

    def test_loads_observed(self):
        dn, topo, host_ips = self.build()
        self.skewed_traffic(dn, host_ips)
        loads = dn.controller.partition_loads()
        assert sum(loads.values()) == 200
        assert max(loads.values()) == 200  # all in the hot partition

    def test_rebalance_moves_partitions_and_reduces_imbalance(self):
        dn, topo, host_ips = self.build()
        self.skewed_traffic(dn, host_ips)
        before = dn.controller.load_imbalance()
        moved = dn.controller.rebalance()
        assert moved >= 1
        after = dn.controller.load_imbalance()
        assert after <= before

    def test_rebalance_preserves_semantics_and_traffic(self):
        dn, topo, host_ips = self.build()
        self.skewed_traffic(dn, host_ips)
        dn.controller.rebalance()
        # Traffic still delivered correctly after the move.
        hosts = sorted(host_ips)
        packet = Packet.from_fields(
            L5, nw_dst=host_ips[hosts[1]], nw_proto=6, tp_src=77, tp_dst=80
        )
        dn.send(hosts[0], packet)
        dn.run()
        assert dn.network.deliveries[-1].delivered
        # Partition rules point only at live owners holding the fragments.
        for state in dn.controller._states.values():
            primary = state.owners[0]
            assert primary in state.installed

    def test_rebalance_conserves_counters(self):
        """Moving a partition must move its load history exactly once —
        the transparency aggregation may never double- or under-count."""
        dn, topo, host_ips = self.build()
        self.skewed_traffic(dn, host_ips, count=150)
        total_before = sum(
            s.packets for s in dn.controller.collect_policy_counters().values()
        )
        assert total_before == 150
        dn.controller.rebalance()
        total_after = sum(
            s.packets for s in dn.controller.collect_policy_counters().values()
        )
        assert total_after == 150

    def test_rebalance_with_replication_promotes_backup(self):
        topo = TopologyBuilder.star(4, hosts_per_leaf=1)
        rules, host_ips = routing_policy_for_topology(topo, L5)
        dn = DifaneNetwork.build(
            topo, rules, L5,
            authority_switches=["s0", "s1"],
            partitions_per_authority=4,
            replication=2,
            cache_capacity=0,
            redirect_rate=None,
        )
        self.skewed_traffic(dn, host_ips, count=120)
        loads_total = sum(dn.controller.partition_loads().values())
        dn.controller.rebalance()
        # Load history survives the promotion, and owner lists stay sized.
        assert sum(dn.controller.partition_loads().values()) == loads_total
        for state in dn.controller._states.values():
            assert len(state.owners) == 2
            assert state.owners[0] in state.installed

    def test_rebalance_noop_when_balanced(self):
        dn, topo, host_ips = self.build()
        # No traffic: loads all zero; greedy packing keeps sizes stable —
        # a second rebalance right after one must move nothing.
        dn.controller.rebalance()
        assert dn.controller.rebalance() == 0
