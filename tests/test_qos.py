"""Per-class QoS: classification, SLO detectors, residency protection.

Covers the QoS observability surface end to end at unit scale:
classifier semantics, the histogram-bucket quantile math, the
``slo-burn`` / ``slo-exhausted`` detector edge cases (single-window
histories, classes absent from windows, zero budgets), cache residency
protection against the scan oracle, admission-shed drop attribution,
the obs-diff severity-upgrade regression rule, dashboard empty states,
Prometheus class labels, and the additive-gating contract (QoS off ⇒
no ``qos_*`` key anywhere).  The flash-crowd differentiation story and
``--jobs`` byte-identity run at experiment scale at the bottom.
"""

import json

import pytest

from repro.flowspace import Forward, Match, Packet, Rule, TWO_FIELD_LAYOUT
from repro.flowspace.rule import RuleKind
from repro.obs.attribution import attribute_reason
from repro.obs.health import slo_report, qos_class_summary
from repro.obs.qos import (
    DEFAULT_CLASS,
    FlowClass,
    FlowClassifier,
    QosPolicy,
    SloSpec,
    bucket_quantile,
    current_qos,
    delay_bucket,
)
from repro.switch import Tcam
from repro.switch.cache import CacheManager, EvictionPolicy, ScanCacheManager

L = TWO_FIELD_LAYOUT


def flow_class(name, f1, **kwargs):
    return FlowClass(name, Match.build(L, f1=f1), **kwargs)


def bits(f1, f2=0):
    return Packet.from_fields(L, f1=f1, f2=f2).header_bits


# ---------------------------------------------------------------------------
# Classifier
# ---------------------------------------------------------------------------

def test_classifier_first_match_wins_and_default():
    classifier = FlowClassifier(
        [flow_class("gold", 3), flow_class("silver", 3), flow_class("gold", 4)]
    )
    assert classifier.classify_bits(bits(3)) == "gold"
    assert classifier.classify_bits(bits(4)) == "gold"
    assert classifier.classify_bits(bits(5)) == DEFAULT_CLASS
    assert classifier.classify(Packet.from_fields(L, f1=3)) == "gold"


def test_classifier_class_names_deduped_default_last():
    classifier = FlowClassifier(
        [flow_class("gold", 1), flow_class("silver", 2), flow_class("gold", 3)]
    )
    assert classifier.class_names() == ["gold", "silver", DEFAULT_CLASS]
    # A configured class that shadows the default is not listed twice.
    classifier = FlowClassifier([flow_class(DEFAULT_CLASS, 1)])
    assert classifier.class_names() == [DEFAULT_CLASS]


def test_classifier_memoizes_by_header():
    classifier = FlowClassifier([flow_class("gold", 3)])
    assert classifier.classify_bits(bits(3)) == "gold"
    # Memo hit: mutating the class list no longer changes seen headers.
    classifier.classes.clear()
    assert classifier.classify_bits(bits(3)) == "gold"
    assert classifier.classify_bits(bits(7)) == DEFAULT_CLASS


def test_flow_class_validation():
    with pytest.raises(ValueError):
        FlowClass("", Match.build(L, f1=1))
    with pytest.raises(ValueError):
        flow_class("gold", 1, reserved_fraction=1.5)


# ---------------------------------------------------------------------------
# Buckets and quantiles
# ---------------------------------------------------------------------------

def test_delay_bucket_bounds():
    assert delay_bucket(0.0) == "0.0001"
    assert delay_bucket(100e-6) == "0.0001"
    assert delay_bucket(101e-6) == "0.00015"
    assert delay_bucket(1.0) == "+Inf"


def test_bucket_quantile():
    assert bucket_quantile({}, 0.99) is None
    counts = {"0.0001": 90.0, "0.0002": 9.0, "+Inf": 1.0}
    assert bucket_quantile(counts, 0.5) == 100e-6
    assert bucket_quantile(counts, 0.95) == 200e-6
    assert bucket_quantile(counts, 1.0) == float("inf")


# ---------------------------------------------------------------------------
# Policy knobs
# ---------------------------------------------------------------------------

def test_policy_weights_reservations_protection():
    policy = QosPolicy(
        FlowClassifier([
            flow_class("gold", 1, weight=8.0, reserved_fraction=0.25,
                       protected=True),
            flow_class("gold", 2, weight=8.0, reserved_fraction=0.5,
                       protected=True),
            flow_class("silver", 3, weight=1.0, reserved_fraction=0.01),
        ]),
        admission_threshold=4,
    )
    # Unit weights are elided so the cache's zero-overhead gate stays off.
    assert policy.class_weights() == {"gold": 8.0}
    # Duplicate class names take the max reservation; tiny fractions
    # round up to at least one entry.
    assert policy.reservations(8) == {"gold": 4, "silver": 1}
    assert policy.reservations(0) == {}
    assert policy.is_protected("gold")
    assert not policy.is_protected("silver")
    assert not policy.is_protected(DEFAULT_CLASS)
    with pytest.raises(ValueError):
        QosPolicy(FlowClassifier(), admission_threshold=0)
    with pytest.raises(ValueError):
        SloSpec("gold", budget=-0.1)
    with pytest.raises(ValueError):
        SloSpec("gold", latency_quantile=0.0)


# ---------------------------------------------------------------------------
# SLO detector edge cases (synthetic telemetry sections)
# ---------------------------------------------------------------------------

def _qos_counters(cls, cache=0.0, redirects=0.0, delivered=0.0, dropped=0.0):
    counters = {}
    if cache:
        counters[f"qos_cache_hits_total{{flow_class={cls},switch=e0}}"] = cache
    if redirects:
        counters[f"qos_redirects_total{{flow_class={cls},switch=e0}}"] = redirects
    if delivered:
        counters[f"qos_delivered_total{{flow_class={cls}}}"] = delivered
    if dropped:
        counters[f"qos_dropped_total{{flow_class={cls}}}"] = dropped
    return counters


def _section(spec_list, window_counters):
    return {
        "interval_s": 1.0,
        "slo_specs": [spec.export() for spec in spec_list],
        "windows": [
            {
                "index": i, "start": float(i), "end": float(i + 1),
                "counters": counters, "samples": {},
            }
            for i, counters in enumerate(window_counters)
        ],
    }


GOOD = dict(cache=9.0, redirects=1.0, delivered=10.0)   # miss 0.1
BAD = dict(cache=1.0, redirects=9.0, delivered=10.0)    # miss 0.9


def test_slo_single_window_history_never_burns():
    # One bad window is cold-start noise: the warm-up gate holds burn
    # findings until the short detector's span is populated, and a
    # 100% budget keeps exhaustion out of the picture.
    spec = SloSpec("gold", miss_rate_target=0.25, budget=1.0)
    report = slo_report(_section([spec], [_qos_counters("gold", **BAD)]))
    assert report["findings"] == []
    assert report["summary"]["gold"]["bad_windows"] == 1
    assert report["summary"]["gold"]["max_burn_short"] == 0.0


def test_slo_class_absent_from_windows():
    spec_gold = SloSpec("gold", miss_rate_target=0.25, budget=0.1)
    spec_ghost = SloSpec("ghost", miss_rate_target=0.25, budget=0.1)
    windows = [
        _qos_counters("gold", **GOOD),
        {},                                # nobody saw traffic
        _qos_counters("gold", **GOOD),
    ]
    report = slo_report(_section([spec_gold, spec_ghost], windows))
    assert report["findings"] == []
    # Absent windows are ineligible, never bad.
    assert report["summary"]["gold"]["eligible_windows"] == 2
    ghost = report["summary"]["ghost"]
    assert ghost["eligible_windows"] == 0
    assert ghost["bad_windows"] == 0
    assert ghost["budget_remaining"] == 1.0


def test_slo_zero_budget_exhausts_on_first_bad_window():
    spec = SloSpec("gold", miss_rate_target=0.25, budget=0.0)
    windows = [
        _qos_counters("gold", **GOOD),
        _qos_counters("gold", **BAD),
        _qos_counters("gold", **BAD),
    ]
    report = slo_report(_section([spec], windows))
    detectors = [(f["detector"], f["window"]) for f in report["findings"]]
    # Exhaustion fires exactly once, at the first bad window; burn math
    # is undefined at zero budget so no burn finding ever fires.
    assert detectors == [("slo-exhausted", 1)]
    summary = report["summary"]["gold"]
    assert summary["exhausted_findings"] == 1
    assert summary["burn_findings"] == 0
    assert summary["budget_remaining"] == 0.0


def test_slo_zero_budget_clean_run_keeps_full_budget():
    spec = SloSpec("gold", miss_rate_target=0.25, budget=0.0)
    report = slo_report(_section([spec], [_qos_counters("gold", **GOOD)]))
    assert report["findings"] == []
    assert report["summary"]["gold"]["budget_remaining"] == 1.0


def test_slo_sustained_burn_fires_warning_and_exhaustion():
    spec = SloSpec("gold", miss_rate_target=0.25, budget=0.1)
    windows = [_qos_counters("gold", **GOOD)] * 3 + \
        [_qos_counters("gold", **BAD)] * 3
    report = slo_report(_section([spec], windows))
    by_detector = {}
    for finding in report["findings"]:
        by_detector.setdefault(finding["detector"], []).append(finding)
    assert [f["window"] for f in by_detector["slo-burn"]] == [3, 4, 5]
    assert [f["window"] for f in by_detector["slo-exhausted"]] == [3]
    assert "burning" in by_detector["slo-burn"][0]["detail"]
    assert "miss-rate 0.900 > 0.25" in by_detector["slo-burn"][0]["detail"]
    summary = report["summary"]["gold"]
    assert summary["bad_windows"] == 3
    assert summary["budget_remaining"] == round((0.6 - 3) / 0.6, 6)


def test_slo_delivery_target():
    spec = SloSpec("gold", delivery_target=0.95, budget=0.0)
    windows = [_qos_counters("gold", cache=10.0, delivered=5.0, dropped=5.0)]
    report = slo_report(_section([spec], windows))
    assert report["findings"][0]["detector"] == "slo-exhausted"
    assert "delivery 0.500 < 0.95" in report["findings"][0]["detail"]


def test_qos_class_summary_totals():
    windows = [
        _qos_counters("gold", **GOOD),
        _qos_counters("gold", **BAD),
    ]
    summary = qos_class_summary(_section([], windows))
    assert list(summary) == ["gold"]
    gold = summary["gold"]
    assert gold["cache_hits"] == 10.0
    assert gold["redirects"] == 10.0
    assert gold["miss_rate"] == 0.5
    assert gold["redirect_p99_s"] is None  # no latency samples recorded
    # Falsy on a run with no qos counters at all: callers gate on it.
    assert qos_class_summary(_section([], [{}])) == {}


# ---------------------------------------------------------------------------
# Cache residency protection
# ---------------------------------------------------------------------------

def cache_rule(f1, flow_class=None, priority=5, port="x"):
    rule = Rule(
        Match.build(L, f1=f1), priority, Forward(port), kind=RuleKind.CACHE
    )
    rule.flow_class = flow_class
    return rule


def manager(cls=CacheManager, capacity=3, policy=EvictionPolicy.LRU, **kwargs):
    return cls(Tcam(L), capacity=capacity, policy=policy, **kwargs)


def surviving_f1(m):
    return sorted(rule.match.ternary.value for rule in m.cache_rules())


def test_reservation_shields_cross_class_eviction():
    m = manager(capacity=3, reserved={"gold": 2})
    m.install(cache_rule(1, "gold"), now=0.0)
    m.install(cache_rule(2, "gold"), now=1.0)
    m.install(cache_rule(3, "best-effort"), now=2.0)
    # LRU would evict rule 1 (oldest) — but gold is at its reservation,
    # so the best-effort entry goes instead.
    m.install(cache_rule(4, "best-effort"), now=3.0)
    assert m.occupancy() == 3
    classes = sorted(r.flow_class for r in m.cache_rules())
    assert classes == ["best-effort", "gold", "gold"]


def test_reservation_allows_same_class_and_excess_eviction():
    m = manager(capacity=2, reserved={"gold": 1})
    m.install(cache_rule(1, "gold"), now=0.0)
    m.install(cache_rule(2, "gold"), now=1.0)
    # Gold holds 2 > reserve 1: its LRU entry is fair game for others.
    m.install(cache_rule(3, "best-effort"), now=2.0)
    classes = sorted(r.flow_class for r in m.cache_rules())
    assert classes == ["best-effort", "gold"]
    # Same-class pressure always competes normally, reservation or not.
    m2 = manager(capacity=2, reserved={"gold": 2})
    m2.install(cache_rule(1, "gold"), now=0.0)
    m2.install(cache_rule(2, "gold"), now=1.0)
    assert m2.install(cache_rule(3, "gold"), now=2.0) is not None
    assert m2.occupancy() == 2


def test_reservation_full_shield_fails_install_but_not_shrink():
    m = manager(capacity=2, reserved={"gold": 2})
    m.install(cache_rule(1, "gold"), now=0.0)
    m.install(cache_rule(2, "gold"), now=1.0)
    # Every entry is shielded: the cross-class install has no victim.
    assert m.install(cache_rule(3, "best-effort"), now=2.0) is None
    assert m.occupancy() == 2
    assert sorted(r.flow_class for r in m.cache_rules()) == ["gold", "gold"]
    # A controller shrink must land regardless of reservations.
    evicted = m.set_capacity(1, now=3.0)
    assert len(evicted) == 1 and m.occupancy() == 1


def test_class_weight_biases_cost_eviction():
    kwargs = dict(policy=EvictionPolicy.COST, cost_tau=1.0)
    plain = manager(capacity=2, **kwargs)
    weighted = manager(capacity=2, class_weights={"gold": 8.0}, **kwargs)
    for m in (plain, weighted):
        m.install(cache_rule(1, "gold"), now=0.0)
        m.install(cache_rule(2, "best-effort"), now=0.0)
        # Best-effort is hotter: without weights gold is the victim.
        entry = m._entries[id(m.cache_rules()[1])]
        m._observe(entry, 3, 0.5)
        m.install(cache_rule(3, "best-effort"), now=1.0)
    assert sorted(r.flow_class for r in plain.cache_rules()) == \
        ["best-effort", "best-effort"]
    assert sorted(r.flow_class for r in weighted.cache_rules()) == \
        ["best-effort", "gold"]


@pytest.mark.parametrize(
    "policy", [EvictionPolicy.LRU, EvictionPolicy.FIFO, EvictionPolicy.COST]
)
def test_reservation_indexed_matches_scan_oracle(policy):
    classes = ["gold", "gold", "silver", None, "best-effort"]
    managers = [
        manager(cls, capacity=3, policy=policy,
                class_weights={"gold": 4.0}, reserved={"gold": 2, "silver": 1})
        for cls in (CacheManager, ScanCacheManager)
    ]
    for m in managers:
        clock = 0.0
        for step in range(24):
            f1 = step % 7
            m.install(cache_rule(f1, classes[step % len(classes)]), now=clock)
            clock += 0.25
            if step % 5 == 4:
                m.tcam.lookup(Packet.from_fields(L, f1=f1), now=clock)
            if step == 15:
                m.set_capacity(2, now=clock)
                m.set_capacity(3, now=clock)
    indexed, oracle = managers
    assert surviving_f1(indexed) == surviving_f1(oracle)
    assert [r.flow_class for r in indexed.cache_rules()] == \
        [r.flow_class for r in oracle.cache_rules()]
    assert indexed.eviction_breakdown() == oracle.eviction_breakdown()


# ---------------------------------------------------------------------------
# Attribution, diff, dashboard, export, gating
# ---------------------------------------------------------------------------

def test_admission_shed_attribution():
    assert attribute_reason("admission shed best-effort") == "admission-control"
    assert attribute_reason("admission shed gold") == "admission-control"


def _doc(severity):
    return {
        "schema": "difane-metrics/1",
        "telemetry": {
            "interval_s": 1.0,
            "windows": [],
            "findings": [{
                "detector": "slo-burn", "severity": severity, "window": 3,
                "start": 3.0, "end": 4.0, "detail": "class gold: burning",
            }],
        },
    }


def test_obs_diff_severity_upgrade_is_regression():
    from repro.analysis.obsdiff import diff_documents, render_diff

    diff = diff_documents(_doc("warning"), _doc("critical"))
    assert not diff["identical"]
    assert diff["new_findings"] == [] and diff["resolved_findings"] == []
    assert len(diff["changed_findings"]) == 1
    assert len(diff["regressions"]) == 1
    text = render_diff(diff)
    assert "warning -> critical" in text
    assert "REGRESSION" in text
    # Downgrades are changes but not regressions.
    diff = diff_documents(_doc("critical"), _doc("warning"))
    assert len(diff["changed_findings"]) == 1
    assert diff["regressions"] == []
    # Identity: same doc diffs empty.
    diff = diff_documents(_doc("warning"), _doc("warning"))
    assert diff["identical"]
    assert render_diff(diff) == "documents are identical\n"


def test_obs_diff_sees_per_class_sections():
    from repro.analysis.obsdiff import diff_documents

    base = {"telemetry": {"interval_s": 1.0, "windows": []}}
    cand = {"telemetry": {
        "interval_s": 1.0, "windows": [],
        "classes": {"gold": {"cache_hits": 5.0}},
        "slo": {"gold": {"bad_windows": 2}},
        "slo_specs": [{"flow_class": "gold", "budget": 0.1}],
    }}
    diff = diff_documents(base, cand)
    keys = [c["key"] for c in diff["sections"]["telemetry"]]
    assert "classes.gold.cache_hits" in keys
    assert "slo.gold.bad_windows" in keys
    assert "slo_specs.0.budget" in keys


def test_dashboard_empty_states_and_class_tables():
    from repro.analysis.dashboard import render_report

    report = render_report({"experiment": "t", "telemetry": {
        "interval_s": 2.5, "windows": [],
    }})
    assert "no windows closed" in report
    assert "2.5s interval" in report
    assert "Health findings: not evaluated for this document" in report

    window = {"index": 0, "start": 0.0, "end": 1.0,
              "counters": {}, "samples": {}}
    report = render_report({"experiment": "t", "telemetry": {
        "interval_s": 1.0, "windows": [window], "findings": [],
    }})
    assert "Health findings: none" in report

    report = render_report({"experiment": "t", "telemetry": {
        "interval_s": 1.0, "windows": [window], "findings": [],
        "classes": {"gold": {
            "cache_hits": 5.0, "authority_hits": 1.0, "redirects": 2.0,
            "miss_rate": 0.25, "delivered": 6.0, "dropped": 0.0,
            "shed": 0.0, "redirect_p99_s": 2e-4,
        }},
        "slo": {"gold": {
            "budget": 0.1, "eligible_windows": 10, "bad_windows": 2,
            "budget_remaining": -1.0, "max_burn_short": 3.33,
            "max_burn_long": 2.5, "burn_findings": 2,
            "exhausted_findings": 1,
        }},
    }})
    assert "Per-class traffic" in report
    assert "Per-class SLO error budgets" in report
    assert "0.0002s" in report
    assert "-100.0%" in report


def test_dashboard_renders_qos_sweep_points_from_notes():
    from repro.analysis.dashboard import render_report

    point = {
        "classes": {"gold": {
            "cache_hits": 5.0, "authority_hits": 0.0, "redirects": 2.0,
            "miss_rate": 0.28, "delivered": 6.0, "dropped": 0.0,
            "shed": 0.0, "redirect_p99_s": None,
        }},
        "slo": {"gold": {
            "budget": 0.1, "eligible_windows": 10, "bad_windows": 4,
            "budget_remaining": -3.0, "max_burn_short": 10.0,
            "max_burn_long": 4.0, "burn_findings": 3,
            "exhausted_findings": 1,
        }},
        "slo_findings": [{
            "window": 6, "severity": "warning", "detector": "slo-burn",
            "detail": "class gold: burning",
        }],
    }
    report = render_report({"experiment": "E9-qos-slo", "notes": {
        "points": {"off": point, "reserved": {**point, "slo_findings": []}},
    }})
    assert "Per-class traffic [off]" in report
    assert "Per-class SLO error budgets [off]" in report
    assert "SLO findings [off] (1)" in report
    assert "SLO findings [reserved]: none" in report
    # Non-QoS sweeps (plain scalar points) render no per-mode blocks.
    report = render_report({"experiment": "E8", "notes": {
        "points": {"lru/16": {"miss_rate": 0.1}},
    }})
    assert "Per-class" not in report


def test_prometheus_export_carries_class_labels():
    from repro.obs.export import prometheus_text

    text = prometheus_text({
        "counters": {
            "qos_delivered_total{flow_class=gold}": 5,
            "qos_redirect_delay_bucket_total{flow_class=gold,le=0.0001}": 3,
        },
        "gauges": {}, "histograms": {},
    })
    assert 'qos_delivered_total{flow_class="gold"} 5' in text
    assert 'flow_class="gold",le="0.0001"' in text


def test_qos_off_is_strictly_additive():
    from repro.experiments.delay import run_delay
    from repro.obs import context as obs_context, fresh_run_context

    assert current_qos() is None
    previous = obs_context.current()
    try:
        context = fresh_run_context(telemetry=True)
        run_delay(flows=10)
        snapshot = context.metrics.snapshot()
        for kind in ("counters", "gauges", "histograms"):
            assert not any(
                key.startswith("qos_") for key in snapshot.get(kind, {})
            )
        from repro.obs.telemetry import telemetry_section

        section = telemetry_section(context.telemetry)
        assert "slo_specs" not in section
        assert "classes" not in section
        assert "slo" not in section
    finally:
        obs_context.install(previous)


# ---------------------------------------------------------------------------
# Experiment scale: differentiation and parallel merge identity
# ---------------------------------------------------------------------------

def test_e9_protection_differentiates_and_jobs_merge_is_byte_identical():
    from repro.experiments.qos import run_qos_slo

    documents = []
    for jobs in (None, 2):
        result = run_qos_slo(modes=("off", "reserved"), jobs=jobs)
        documents.append(json.dumps(result.notes, sort_keys=True))
    # Satellite: per-class counters/findings merge associatively — the
    # two-worker sweep is byte-identical to the serial one.
    assert documents[0] == documents[1]

    notes = json.loads(documents[0])
    gold = notes["gold_slo_by_mode"]
    # Unprotected gold blows its budget during the flash crowds and the
    # detectors say so; reserved residency keeps it inside the budget.
    assert gold["off"]["bad_windows"] > gold["reserved"]["bad_windows"]
    assert gold["off"]["budget_remaining"] < 0
    assert gold["reserved"]["budget_remaining"] > 0
    off_detectors = {
        f["detector"] for f in notes["points"]["off"]["slo_findings"]
    }
    assert {"slo-burn", "slo-exhausted"} <= off_detectors
    assert notes["points"]["reserved"]["slo_findings"] == []
