"""Tests for the time-binned rate analysis."""

import pytest

from repro.analysis.timeline import detour_timeline, rate_timeline
from repro.net.simnet import DeliveryRecord


def record(finish, delivered=True, via_authority=False):
    return DeliveryRecord(
        packet_id=0, flow_id=None, created_at=finish - 0.001,
        finished_at=finish, delivered=delivered, hops=2,
        via_authority=via_authority, via_controller=False,
        ingress_switch="s0", endpoint="h1",
    )


class TestRateTimeline:
    def test_uniform_rate(self):
        records = [record(i * 0.01) for i in range(100)]  # 100/s for 1s
        series = rate_timeline(records, bin_width_s=0.1)
        assert len(series) == 10
        assert all(y == pytest.approx(100.0) for y in series.y)

    def test_excludes_drops_by_default(self):
        records = [record(0.05), record(0.06, delivered=False)]
        series = rate_timeline(records, bin_width_s=0.1)
        assert series.y == [pytest.approx(10.0)]

    def test_includes_drops_when_asked(self):
        records = [record(0.05), record(0.06, delivered=False)]
        series = rate_timeline(records, bin_width_s=0.1, delivered_only=False)
        assert series.y == [pytest.approx(20.0)]

    def test_empty(self):
        assert len(rate_timeline([], bin_width_s=0.1)) == 0

    def test_invalid_bin(self):
        with pytest.raises(ValueError):
            rate_timeline([], bin_width_s=0)


class TestDetourTimeline:
    def test_warmup_shape(self):
        # First bin: all detours (cold cache); second bin: none.
        records = (
            [record(0.01 * i, via_authority=True) for i in range(5)]
            + [record(0.1 + 0.01 * i, via_authority=False) for i in range(5)]
        )
        series = detour_timeline(records, bin_width_s=0.1)
        assert series.y[0] == pytest.approx(1.0)
        assert series.y[-1] == pytest.approx(0.0)

    def test_drops_excluded(self):
        records = [record(0.01, via_authority=True),
                   record(0.02, delivered=False, via_authority=True)]
        series = detour_timeline(records, bin_width_s=0.1)
        assert series.y == [pytest.approx(1.0)]

    def test_empty(self):
        assert len(detour_timeline([], bin_width_s=0.1)) == 0

    def test_live_network_warmup(self):
        """End-to-end: the detour fraction falls as caches warm."""
        from repro.core import DifaneNetwork
        from repro.flowspace import FIVE_TUPLE_LAYOUT
        from repro.net import TopologyBuilder
        from repro.workloads.policies import routing_policy_for_topology
        from repro.workloads.traffic import host_pair_packets

        topo = TopologyBuilder.linear(3, hosts_per_switch=2)
        rules, host_ips = routing_policy_for_topology(topo, FIVE_TUPLE_LAYOUT)
        dn = DifaneNetwork.build(
            topo, rules, FIVE_TUPLE_LAYOUT, authority_count=1,
            cache_capacity=64, redirect_rate=None,
        )
        for timed in host_pair_packets(
            topo, host_ips, FIVE_TUPLE_LAYOUT, count=150, rate=2000.0,
            seed=5, flow_packets=2,
        ):
            dn.send_at(timed.time, timed.source_host, timed.packet)
        dn.run()
        series = detour_timeline(dn.network.delivered(), bin_width_s=0.02)
        assert len(series) >= 2
        assert series.y[-1] < series.y[0]
