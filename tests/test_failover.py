"""Data-plane authority failover (paper §4.3) and failure injection."""

import pytest

from repro.core import DifaneNetwork
from repro.flowspace import FIVE_TUPLE_LAYOUT, Packet
from repro.net import TopologyBuilder
from repro.net.failures import FailureInjector
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def build_replicated():
    """Star topology: hub plus leaves; authorities on two leaves."""
    topo = TopologyBuilder.star(4, hosts_per_leaf=1)
    rules, host_ips = routing_policy_for_topology(topo, L)
    dn = DifaneNetwork.build(
        topo, rules, L,
        authority_switches=["s0", "s1"],
        replication=2,
        cache_capacity=0,   # force every packet down the redirect path
        redirect_rate=None,
    )
    return dn, topo, host_ips


def packet_to(host_ips, dst, sport):
    return Packet.from_fields(
        L, nw_src=0x0A0A0A0A, nw_dst=host_ips[dst], nw_proto=6,
        tp_src=sport, tp_dst=80,
    )


class TestDataPlaneFailover:
    def test_partition_rules_carry_backups(self):
        dn, topo, host_ips = build_replicated()
        for switch in dn.switches():
            for rule in switch.pipeline.partition:
                action = rule.actions.actions[0]
                assert len(action.backups) == 1
                assert action.backups[0] != action.destination

    def test_traffic_survives_primary_death_without_controller(self):
        dn, topo, host_ips = build_replicated()
        injector = FailureInjector(dn.network)
        messages_before = dn.controller.control_messages

        # Identify a partition primarily owned by s0 and a flow in it.
        state = next(
            s for s in dn.controller._states.values() if s.owners[0] == "s0"
        )
        target_bits = None
        for sport in range(1000, 4000):
            for dst in host_ips:
                bits = L.pack_values(
                    nw_src=0x0A0A0A0A, nw_dst=host_ips[dst], nw_proto=6,
                    tp_src=sport, tp_dst=80,
                )
                if state.partition.region.matches(bits):
                    target_bits = (dst, sport)
                    break
            if target_bits:
                break
        assert target_bits is not None
        dst, sport = target_bits

        # Sanity: flows to that partition via primary.
        dn.send("h2", packet_to(host_ips, dst, sport))
        dn.run()
        assert dn.network.deliveries[-1].delivered or (
            dn.network.deliveries[-1].drop_reason == "policy drop"
        )

        # Kill the primary; the ingress must fail over in the data plane.
        injector.fail_switch("s0")
        dn.send("h2", packet_to(host_ips, dst, sport + 1))
        dn.run()
        record = dn.network.deliveries[-1]
        assert record.delivered or record.drop_reason == "policy drop"
        assert sum(s.failovers for s in dn.switches()) >= 1
        # Zero controller involvement.
        assert dn.controller.control_messages == messages_before

    def test_no_live_replica_drops_cleanly(self):
        dn, topo, host_ips = build_replicated()
        injector = FailureInjector(dn.network)
        injector.fail_switch("s0")
        injector.fail_switch("s1")
        dn.send("h2", packet_to(host_ips, "h3", 1234))
        dn.run()
        record = dn.network.deliveries[-1]
        assert not record.delivered
        assert record.drop_reason == "authority unreachable"

    def test_restore_switch_recovers(self):
        dn, topo, host_ips = build_replicated()
        injector = FailureInjector(dn.network)
        injector.fail_switch("s0")
        injector.fail_switch("s1")
        injector.restore_switch("s0")
        dn.send("h2", packet_to(host_ips, "h3", 1235))
        dn.run()
        record = dn.network.deliveries[-1]
        assert record.delivered or record.drop_reason == "policy drop"


class TestFailureInjector:
    def test_link_cycle(self):
        dn, topo, host_ips = build_replicated()
        injector = FailureInjector(dn.network)
        spec = topo.link_spec("hub", "s2")
        injector.fail_link("hub", "s2")
        assert not dn.network.routes.reachable("s2", "hub")
        injector.restore_link("hub", "s2", spec)
        assert dn.network.routes.reachable("s2", "hub")
        kinds = [kind for _, kind, _ in injector.events]
        assert kinds == ["link-down", "link-up"]

    def test_switch_fail_counts_links(self):
        dn, topo, host_ips = build_replicated()
        injector = FailureInjector(dn.network)
        cut = injector.fail_switch("s0")
        assert cut == 2  # hub link + host link
        assert injector.restore_switch("s0") == 2

    def test_scheduled_failure_fires(self):
        dn, topo, host_ips = build_replicated()
        injector = FailureInjector(dn.network)
        injector.fail_switch_at(0.5, "s0")
        dn.run(until=1.0)
        assert ("switch-down") in [k for _, k, _ in injector.events]
        assert not dn.network.routes.reachable("hub", "s0")
