"""IPv6-width headers: the whole stack is width-generic.

The paper's motivation section argues TCAM pressure worsens with IPv6
(each entry grows by 192 address bits).  Nothing in this reproduction is
specialized to 32-bit addresses, so DIFANE's algorithms — partitioning,
independent cache-rule generation, lookup — must work unchanged over the
296-bit IPv6 5-tuple.  These tests demonstrate that, plus the entry-size
arithmetic the motivation quotes.
"""

import random

import pytest

from repro.core import DifaneNetwork, generate_cache_rule, partition_policy
from repro.flowspace import Drop, Forward, Match, Packet, Rule, RuleTable, Ternary
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT, IPV6_FIVE_TUPLE_LAYOUT
from repro.net import TopologyBuilder

L6 = IPV6_FIVE_TUPLE_LAYOUT


def v6_policy(prefixes=24, seed=0):
    """Routing-style rules over random /64 destination prefixes."""
    rng = random.Random(seed)
    rules = []
    for index in range(prefixes):
        prefix_value = rng.getrandbits(64) << 64
        match = Match(
            L6, L6.pack_match(nw_dst=Ternary.from_prefix(prefix_value, 64, 128))
        )
        rules.append(Rule(match, prefixes - index, Forward(f"e{index % 4}")))
    rules.append(Rule(Match.any(L6), 0, Drop()))
    return rules


class TestLayout:
    def test_width(self):
        assert L6.width == 128 + 128 + 8 + 16 + 16 == 296

    def test_entry_growth_vs_ipv4(self):
        """The motivation's arithmetic: +192 bits per entry vs IPv4."""
        assert L6.width - FIVE_TUPLE_LAYOUT.width == 192

    def test_pack_and_match(self):
        prefix = Ternary.from_prefix(0x2001_0DB8 << 96, 32, 128)
        match = Match(L6, L6.pack_match(nw_dst=prefix, tp_dst=443))
        packet = Packet.from_fields(
            L6, nw_dst=(0x2001_0DB8 << 96) | 0xBEEF, tp_dst=443
        )
        assert match.matches_packet(packet)


class TestAlgorithmsAtV6Width:
    def test_partitioning_tiles_and_preserves_semantics(self):
        rules = v6_policy()
        result = partition_policy(rules, L6, num_partitions=8)
        assert len(result.partitions) == 8
        table = RuleTable(L6, rules)
        rng = random.Random(1)
        for _ in range(150):
            bits = rng.getrandbits(L6.width)
            owners = [p for p in result.partitions if p.contains_bits(bits)]
            assert len(owners) == 1
            fragment = next(
                (r for r in owners[0].rules if r.match.matches_bits(bits)), None
            )
            expected = table.lookup_bits(bits)
            if expected is None:
                assert fragment is None
            else:
                assert fragment is not None
                assert fragment.root_origin() is expected

    def test_cache_rule_generation(self):
        rules = v6_policy()
        table = RuleTable(L6, rules)
        ordered = list(table.rules)
        rng = random.Random(2)
        for _ in range(30):
            bits = rng.getrandbits(L6.width)
            winner = table.lookup_bits(bits)
            cached = generate_cache_rule(ordered, winner, bits)
            assert cached is not None
            assert cached.match.matches_bits(bits)
            assert cached.root_origin() is winner

    def test_end_to_end_difane_over_ipv6(self):
        topo = TopologyBuilder.linear(3, hosts_per_switch=1)
        hosts = topo.hosts()
        host_ips = {
            host: (0x2001_0DB8 << 96) | (index + 1)
            for index, host in enumerate(hosts)
        }
        rules = [
            Rule(
                Match(L6, L6.pack_match(nw_dst=Ternary.exact(ip, 128))),
                10,
                Forward(host),
            )
            for host, ip in host_ips.items()
        ]
        rules.append(Rule(Match.any(L6), 0, Drop()))
        dn = DifaneNetwork.build(
            topo, rules, L6, authority_switches=["s1"], cache_capacity=16,
            redirect_rate=None,
        )
        packet = Packet.from_fields(
            L6, nw_dst=host_ips["h2"], nw_proto=6, tp_src=999, tp_dst=80
        )
        dn.send("h0", packet)
        dn.run()
        record = dn.network.delivered()[0]
        assert record.endpoint == "h2"
        assert record.via_authority
        # Second flow to the same host hits the wildcard cache.
        packet2 = Packet.from_fields(
            L6, nw_dst=host_ips["h2"], nw_proto=6, tp_src=555, tp_dst=443
        )
        dn.send("h0", packet2)
        dn.run()
        assert dn.switch("s0").cache_hits == 1
