"""Tests for the failover-transient experiment (A6)."""

import pytest

from repro.experiments.failover import run_failover_transient


@pytest.fixture(scope="module")
def result():
    return run_failover_transient(rate=2_000.0, duration=0.3, failure_time=0.15)


class TestFailoverTransient:
    def test_replicated_design_is_lossless(self, result):
        assert result.notes["replicated_drops"] == 0

    def test_controller_repair_loses_packets(self, result):
        # Roughly: rate × detection window × (failed switch's load share).
        assert result.notes["repair_drops"] > 0

    def test_failovers_happen_only_in_replicated_design(self, result):
        rows = {row[0]: row for row in result.table_rows}
        assert rows["data-plane failover"][3] > 0
        assert rows["controller repair"][3] == 0

    def test_timelines_reported(self, result):
        labels = {s.label for s in result.series}
        assert labels == {"data-plane failover", "controller repair"}
        for series in result.series:
            assert len(series) >= 3

    def test_repair_restores_service(self, result):
        """After the controller repair, the delivery rate recovers."""
        repaired = result.series_by_label("controller repair")
        failure = result.notes["failure_time"]
        repair = failure + result.notes["detection_delay_s"]
        tail = [y for x, y in zip(repaired.x, repaired.y) if x > repair + 0.02]
        assert tail, "no samples after the repair window"
        assert max(tail) > 0
