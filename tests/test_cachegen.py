"""Unit and property tests for independent cache-rule generation.

The central caching invariant (paper §3.2): a generated cache rule may be
installed *alone*, at any priority, without changing any packet's verdict
— because its match is exactly (a subset of) the region where its origin
rule wins.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import generate_cache_rule, generate_cache_rules
from repro.core.cachegen import win_region
from repro.flowspace import (
    Drop,
    Forward,
    Match,
    Rule,
    RuleTable,
    Ternary,
    TWO_FIELD_LAYOUT,
)
from repro.flowspace.rule import RuleKind

L = TWO_FIELD_LAYOUT


def rule(priority, action=None, **fields):
    return Rule(Match.build(L, **fields), priority, action or Forward("out"))


def chain_policy():
    return [
        rule(30, Drop(), f1="0000xxxx", f2="0000xxxx"),
        rule(20, Forward("a"), f1="0000xxxx"),
        rule(10, Forward("b"), f2="0000xxxx"),
        rule(0, Forward("c")),
    ]


class TestWinRegion:
    def test_top_rule_wins_everywhere_it_matches(self):
        rules = chain_policy()
        region = win_region(rules, rules[0])
        assert region.covers(rules[0].match.ternary)

    def test_default_rule_excludes_all_overlaps(self):
        rules = chain_policy()
        region = win_region(rules, rules[-1])
        table = RuleTable(L, rules)
        rng = random.Random(0)
        for _ in range(200):
            bits = rng.getrandbits(16)
            assert region.contains_bits(bits) == (table.lookup_bits(bits) is rules[-1])

    def test_shadowed_rule_has_empty_region(self):
        wide = rule(10, Forward("w"), f1="0000xxxx")
        hidden = rule(5, Forward("h"), f1="00001xxx")
        region = win_region([wide, hidden], hidden)
        assert region.is_empty()

    def test_target_not_in_rules_raises(self):
        rules = chain_policy()
        with pytest.raises(ValueError):
            win_region(rules[:-1], rules[-1])


class TestGenerateCacheRule:
    def test_covers_the_packet(self):
        rules = chain_policy()
        table = RuleTable(L, rules)
        bits = L.pack_values(f1=1, f2=200)  # hits the priority-20 rule
        winner = table.lookup_bits(bits)
        cached = generate_cache_rule(rules, winner, bits)
        assert cached is not None
        assert cached.kind is RuleKind.CACHE
        assert cached.match.matches_bits(bits)
        assert cached.root_origin() is winner

    def test_carries_winner_actions(self):
        rules = chain_policy()
        bits = L.pack_values(f1=1, f2=1)  # hits the drop
        cached = generate_cache_rule(rules, rules[0], bits)
        assert cached.actions == rules[0].actions

    def test_never_steals_from_higher_priority(self):
        """The independence invariant, exhaustively on 16-bit headers."""
        rules = chain_policy()
        table = RuleTable(L, rules)
        target = rules[-1]  # the default: longest dependency chain
        bits = L.pack_values(f1=200, f2=200)
        cached = generate_cache_rule(rules, target, bits)
        for point in cached.match.ternary.enumerate():
            assert table.lookup_bits(point) is target

    def test_outside_win_region_returns_none(self):
        rules = chain_policy()
        bits = L.pack_values(f1=1, f2=1)  # actually won by rules[0]
        assert generate_cache_rule(rules, rules[1], bits) is None


class TestGenerateCacheRules:
    def test_fragments_cover_win_region_exactly(self):
        rules = chain_policy()
        fragments = generate_cache_rules(rules, rules[-1])
        table = RuleTable(L, rules)
        covered = set()
        for fragment in fragments:
            covered.update(fragment.match.ternary.enumerate())
        expected = {
            bits for bits in range(1 << 16) if table.lookup_bits(bits) is rules[-1]
        }
        assert covered == expected

    def test_fragments_pairwise_disjoint(self):
        rules = chain_policy()
        fragments = generate_cache_rules(rules, rules[-1])
        for i, a in enumerate(fragments):
            for b in fragments[i + 1:]:
                assert not a.match.intersects(b.match)

    def test_packet_fragment_first(self):
        rules = chain_policy()
        bits = L.pack_values(f1=200, f2=200)
        fragments = generate_cache_rules(rules, rules[-1], packet_bits=bits)
        assert fragments[0].match.matches_bits(bits)

    def test_max_fragments_cap(self):
        rules = chain_policy()
        fragments = generate_cache_rules(rules, rules[-1], max_fragments=2)
        assert len(fragments) <= 2


# ---------------------------------------------------------------------------
# Property: caching never changes semantics
# ---------------------------------------------------------------------------

ternaries16 = st.builds(
    lambda v, m: Ternary(v & m, m, 16),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
)


@settings(max_examples=50, deadline=None)
@given(
    specs=st.lists(
        st.tuples(ternaries16, st.integers(min_value=0, max_value=9)),
        min_size=1,
        max_size=8,
    ),
    probe=st.integers(min_value=0, max_value=0xFFFF),
    checks=st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=10, max_size=10),
)
def test_prop_cache_rule_independence(specs, probe, checks):
    """For a random policy and a random miss, the generated cache rule's
    entire match agrees with the policy's verdict for the winner."""
    rules = [
        Rule(Match(L, t), prio, Forward(f"p{i}"))
        for i, (t, prio) in enumerate(specs)
    ]
    table = RuleTable(L, rules)
    ordered = list(table.rules)
    winner = table.lookup_bits(probe)
    if winner is None:
        return
    cached = generate_cache_rule(ordered, winner, probe)
    assert cached is not None
    assert cached.match.matches_bits(probe)
    # Every point of the cached match must be won by the same origin rule.
    for bits in checks:
        if cached.match.matches_bits(bits):
            assert table.lookup_bits(bits) is winner
    # And exhaustively when the fragment is small.
    if cached.match.ternary.size() <= 64:
        for bits in cached.match.ternary.enumerate():
            assert table.lookup_bits(bits) is winner
