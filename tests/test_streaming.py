"""Streaming workload + M1 soak: equivalence, determinism, memory bounds.

The streaming machinery only earns its complexity if it is *invisible*
in the results: lazily-fed schedules must match pre-materialized ones
byte-for-byte, sketch observability must agree with the exact per-packet
records it replaces (within its proven bound), and the cached Zipf CDF
must be built exactly once per (n, alpha).
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter

import numpy as np
import pytest

from repro.experiments.common import metrics_document
from repro.experiments.streaming import run_streaming_soak
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT, parse_ip
from repro.net.simnet import DeliveryLog, DeliveryRecord
from repro.net.topology import TopologyBuilder
from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.workloads.batches import host_pair_batches, stream_host_pair_batches
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.streaming import (
    BASE_ADDRESS,
    StreamSpec,
    epoch_bursts,
    host_addresses,
    stream_bursts,
    streaming_policy,
    streaming_topology,
)
from repro.workloads.zipf import ZipfSampler, zipf_cdf

LAYOUT = FIVE_TUPLE_LAYOUT

# The pinned-scale M1 configuration shared by the equivalence tests and
# the golden (small enough for CI, large enough to exercise flash crowds,
# a full diurnal cycle and cache churn).
M1_SMALL = dict(
    hosts=4096, edge_switches=4, epochs=40, burst_size=64, rules_per_switch=16,
)


@pytest.fixture(autouse=True)
def _restore_context():
    previous = obs_context.current()
    yield
    obs_context.install(previous)


def _burst_key(timed):
    """Identity of a burst minus globally-reserved packet ids."""
    return (
        timed.time,
        timed.switch,
        timed.batch.header_bits_list(),
        list(timed.batch.flow_ids),
    )


# -- generator equivalences --------------------------------------------------


def test_stream_host_pair_batches_is_the_lazy_view():
    topo = TopologyBuilder.star(leaf_count=3, hosts_per_leaf=2)
    _, host_ips = routing_policy_for_topology(topo, LAYOUT)
    kwargs = dict(bursts=3, burst_size=20, hot_flows=8, alpha=1.0, seed=7)
    eager = host_pair_batches(topo, host_ips, LAYOUT, **kwargs)
    lazy = list(stream_host_pair_batches(topo, host_ips, LAYOUT, **kwargs))
    assert [_burst_key(t) for t in eager] == [_burst_key(t) for t in lazy]


def test_epoch_bursts_random_access_equals_sequential():
    """Epoch e regenerates identically with or without epochs 0..e-1."""
    spec = StreamSpec(
        hosts=512, edge_switches=4, epochs=12, burst_size=32,
        rules_per_switch=8, seed=3,
    )
    sequential = [_burst_key(t) for t in stream_bursts(spec, LAYOUT)]
    random_access = []
    for epoch in reversed(range(spec.epochs)):  # deliberately out of order
        random_access[:0] = [_burst_key(t) for t in epoch_bursts(spec, epoch, LAYOUT)]
    assert sequential == random_access


def test_flash_crowd_windows_and_hotset_stability():
    spec = StreamSpec(
        hosts=1000, edge_switches=2, rules_per_switch=4,
        flash_every_epochs=10, flash_length_epochs=3, flash_hotset_size=16,
    )
    # No flash before the first full period, then 3-epoch windows.
    assert spec.flash_hotset(0) is None
    assert spec.flash_hotset(2) is None
    assert spec.flash_hotset(9) is None
    for epoch in (10, 11, 12):
        hotset = spec.flash_hotset(epoch)
        assert hotset is not None and len(hotset) == 16
        assert (spec.flash_hotset(10) == hotset).all()  # stable within window
    assert spec.flash_hotset(13) is None
    # A different flash id draws a different hotset.
    assert not (spec.flash_hotset(10) == spec.flash_hotset(20)).all()


def test_diurnal_cycle_modulates_epoch_budget():
    spec = StreamSpec(
        hosts=100, edge_switches=2, rules_per_switch=4, burst_size=100,
        diurnal_amplitude=0.5, diurnal_period_epochs=8,
    )
    counts = [spec.epoch_packet_count(e) for e in range(8)]
    assert counts[0] == 100                      # sin(0) = 0
    assert counts[2] == 150                      # peak: 1 + 0.5
    assert counts[6] == 50                       # trough: 1 - 0.5
    assert max(counts) == 150 and min(counts) == 50
    flat = StreamSpec(
        hosts=100, edge_switches=2, rules_per_switch=4, burst_size=100,
        diurnal_amplitude=0.0,
    )
    assert {flat.epoch_packet_count(e) for e in range(20)} == {100}


def test_mobility_rewires_ingress_but_not_traffic():
    """Mobility changes *where* packets enter, never *what* they are."""
    base = dict(hosts=2048, edge_switches=4, rules_per_switch=8,
                burst_size=200, seed=11, flash_every_epochs=0)
    home = StreamSpec(mobility_rate=0.0, **base)
    mobile = StreamSpec(mobility_rate=1.0, **base)

    def flatten(spec, epoch):
        flows, ingress = [], []
        for timed in epoch_bursts(spec, epoch, LAYOUT):
            flows.extend(timed.batch.flow_ids)
            ingress.extend([timed.switch] * len(timed))
        return flows, ingress

    home_flows, home_ingress = flatten(home, 5)
    mobile_flows, mobile_ingress = flatten(mobile, 5)
    # Same packet population (destinations are drawn before mobility)...
    assert TallyCounter(home_flows) == TallyCounter(mobile_flows)
    assert len(home_ingress) == len(mobile_ingress)
    # ...but the ingress attachment genuinely churned.
    assert home_ingress != mobile_ingress
    # And the rewiring is a pure function of (host, epoch): regenerating
    # the epoch reproduces it exactly.
    assert flatten(mobile, 5) == (mobile_flows, mobile_ingress)


def test_host_addresses_pack_into_aligned_switch_blocks():
    spec = StreamSpec(hosts=4096, edge_switches=4, rules_per_switch=16)
    indices = np.arange(spec.hosts)
    addresses = host_addresses(spec, indices)
    assert len(np.unique(addresses)) == spec.hosts  # injective
    assert int(addresses.min()) >= BASE_ADDRESS
    assert int(addresses.max()) < parse_ip("11.0.0.0")
    # Host i's block is its home switch's block (i % E).
    blocks = (addresses - BASE_ADDRESS) >> spec.host_bits
    assert (blocks == indices % spec.edge_switches).all()


def test_streaming_policy_covers_every_host_block():
    spec = StreamSpec(hosts=4096, edge_switches=4, rules_per_switch=16)
    rules = streaming_policy(spec, LAYOUT)
    assert len(rules) == spec.edge_switches * spec.rules_per_switch + 1
    topo = streaming_topology(spec)
    # O(E) physical nodes under 4096 virtual hosts.
    assert len(topo.switches()) == 1 + spec.edge_switches + spec.authority_switches


def test_stream_spec_validation():
    base = dict(hosts=100, edge_switches=2, rules_per_switch=4)
    with pytest.raises(ValueError):
        StreamSpec(**{**base, "hosts": 1})
    with pytest.raises(ValueError):
        StreamSpec(**{**base, "rules_per_switch": 3})  # not a power of two
    with pytest.raises(ValueError):
        StreamSpec(**{**base, "rules_per_switch": 256})  # exceeds block
    with pytest.raises(ValueError):
        StreamSpec(**{**base, "flash_share": 1.5})
    with pytest.raises(ValueError):
        StreamSpec(**{**base, "mobility_rate": -0.1})
    with pytest.raises(ValueError):
        StreamSpec(hosts=1 << 25, edge_switches=1, rules_per_switch=4)


# -- the zipf-CDF cache regression -------------------------------------------


def test_zipf_cdf_is_built_once_and_shared():
    """The PR-8 fix: the CDF used to be re-derived per sampler."""
    context = fresh_run_context()
    n, alpha = 7001, 1.25  # unique params: no other test caches these
    a = ZipfSampler(n, alpha=alpha, seed=1)
    b = ZipfSampler(n, alpha=alpha, seed=2)
    registry = context.metrics
    events = {
        outcome: registry.counter(
            "artifact_cache_events_total", kind="zipf-cdf", outcome=outcome
        ).value
        for outcome in ("build", "memory")
    }
    assert events["build"] == 1, "CDF must be constructed exactly once"
    assert events["memory"] >= 1, "second sampler must hit the memory tier"
    # Same object, and immutable so sharing is safe.
    assert a._cdf is b._cdf
    assert not a._cdf.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        a._cdf[0] = 0.5
    assert zipf_cdf(n, alpha) is a._cdf
    # Different seeds still sample differently off the shared CDF.
    assert a.sample_many(50) != b.sample_many(50)
    assert all(0 <= s < n for s in a.sample_many(50))


# -- DeliveryLog streaming mode ----------------------------------------------


class _CountingObserver:
    def __init__(self):
        self.records = 0

    def record(self, record):
        self.records += 1

    def block(self, block):
        raise AssertionError("no blocks in this test")


def _record(packet_id):
    return DeliveryRecord(
        packet_id, 0, 0.0, 1e-4, True, 2, False, False, "e0", "sink0", None,
    )


def test_delivery_log_streaming_guards():
    log = DeliveryLog()
    observer = _CountingObserver()
    log.stream_into(observer)
    for i in range(3):
        log.append(_record(i))
    assert observer.records == 3
    assert len(log) == 3 and bool(log)
    with pytest.raises(RuntimeError, match="streaming"):
        list(log)
    with pytest.raises(RuntimeError, match="streaming"):
        log[0]
    # Retroactive streaming is refused: records already landed.
    populated = DeliveryLog()
    populated.append(_record(0))
    with pytest.raises(RuntimeError):
        populated.stream_into(observer)


# -- M1 equivalences ---------------------------------------------------------


def _m1_document(**overrides):
    context = fresh_run_context(telemetry=True)
    result = run_streaming_soak(**{**M1_SMALL, **overrides})
    document = metrics_document(result, context=context)
    return json.dumps(document, indent=2, sort_keys=True), result


@pytest.mark.parametrize("sketch", [False, True], ids=["records", "sketch"])
def test_m1_stream_equals_materialized(sketch):
    """Lazy feeding and a pre-built schedule emit byte-identical documents."""
    streamed, _ = _m1_document(stream=True, sketch=sketch)
    materialized, _ = _m1_document(stream=False, sketch=sketch)
    assert streamed == materialized


def test_m1_jobs_flag_is_inert():
    """One soak is one simulation: ``--jobs`` must not change a byte."""
    one, _ = _m1_document(sketch=True, jobs=1)
    two, _ = _m1_document(sketch=True, jobs=2)
    assert one == two


def test_m1_sketch_mode_preserves_outcome_counters():
    """Delivery/drop accounting is registry-driven: sketch on/off agree."""
    _, with_sketch = _m1_document(sketch=True)
    _, without = _m1_document(sketch=False)
    for key in ("offered", "delivered", "dropped", "cache_hit_rate",
                "redirects", "unaccounted_packets", "invariant_violations"):
        assert with_sketch.notes[key] == without.notes[key], key
    assert with_sketch.notes["offered"] > 0
    assert with_sketch.notes["unaccounted_packets"] == 0


def test_m1_sketch_agrees_with_exact_records_within_bound():
    """Validation scale: sketches vs the per-packet ground truth they replace."""
    _, exact_run = _m1_document(sketch=False)
    _, sketch_run = _m1_document(sketch=True)
    observer = sketch_run.notes["_observer"]
    records = exact_run.notes["_network"].delivered()
    delays = sorted(r.finished_at - r.created_at for r in records)
    sketch = observer.delay_sketch

    assert observer.delivered == len(delays) == exact_run.notes["delivered"]
    # Rank queries: sketch vs exact oracle, within the tracked bound.
    bound = sketch.rank_error_bound()
    assert bound < len(delays) * 0.05, "bound should be tight at this scale"
    for x in delays[:: max(1, len(delays) // 50)]:
        exact_rank = sum(1 for d in delays if d <= x)
        assert abs(sketch.rank(x) - exact_rank) <= bound
    # Quantile estimates land within the quantile rank bound of the
    # target rank (ties widen the exact rank to an interval).
    qbound = sketch.quantile_rank_bound()
    for q in (0.5, 0.9, 0.99):
        estimate = sketch.quantile(q)
        less = sum(1 for d in delays if d < estimate)
        less_equal = sum(1 for d in delays if d <= estimate)
        target = q * len(delays)
        assert less - qbound <= target <= less_equal + qbound
    assert sketch.quantile(0.0) == delays[0]
    assert sketch.quantile(1.0) == delays[-1]

    # Hop histogram is exact (fixed-width bins, no approximation).
    true_hops = TallyCounter(r.hops for r in records)
    exported = observer.hop_histogram.export()["buckets"]
    assert {int(k): v for k, v in exported.items()} == dict(true_hops)

    # Space-Saving guarantee against the true offered-destination counts.
    spec = StreamSpec(
        hosts=M1_SMALL["hosts"], edge_switches=M1_SMALL["edge_switches"],
        epochs=M1_SMALL["epochs"], burst_size=M1_SMALL["burst_size"],
        rules_per_switch=M1_SMALL["rules_per_switch"],
    )
    offered = TallyCounter(
        str(flow) for t in stream_bursts(spec, LAYOUT) for flow in t.batch.flow_ids
    )
    top = observer.hot_destinations
    assert top.total == sum(offered.values())
    threshold = top.guarantee_threshold()
    for key, count in offered.items():
        if count > threshold:
            assert key in top
    for key, count, _error in top.entries():
        assert count >= offered[key]


def test_m1_document_contains_sketch_sections_and_telemetry():
    text, result = _m1_document(sketch=True)
    document = json.loads(text)
    metrics = document["metrics"]
    assert "stream_delivery_delay_seconds" in metrics["sketches"]
    assert "stream_hot_destinations" in metrics["top_k"]
    assert "stream_delivery_hops" in metrics["fixed_histograms"]
    export = metrics["sketches"]["stream_delivery_delay_seconds"]
    assert export["count"] == result.notes["delivered"]
    assert export["rank_error_bound"] >= 0
    assert set(export["quantiles"]) == {"0", "0.5", "0.9", "0.99", "0.999", "1"}
    # The sketch probe levels made it into the telemetry windows.
    sampled = {
        name
        for window in document["telemetry"]["windows"]
        for name in window.get("samples", {})
    }
    assert "stream_delivered_packets" in sampled
    assert "stream_sketch_error_weight" in sampled
    # Debug handles must never leak into the serialized document.
    assert "_network" not in json.dumps(document)
