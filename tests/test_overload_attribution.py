"""Regression: controller-overload drops must be attributed, not lost.

The bug: :class:`~repro.net.events.ServiceStation` counted queue drops at
a saturated NOX controller, and the drop records carried the reason
``"controller overloaded"`` — but the experiment attribution table had no
entry for that prefix, so the loss landed in *unattributed* and every
saturated NOX baseline under-reported overload loss.  The attribution
table now lives in :mod:`repro.obs.attribution` and includes the prefix;
these tests pin the whole chain: station counter → drop record → bucket →
registry label.
"""

from __future__ import annotations

import pytest

from repro.baselines.nox import NoxNetwork
from repro.experiments.chaos import attribute_drops
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.packet import Packet
from repro.net.topology import Topology
from repro.obs import attribute_reason
from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.workloads.policies import routing_policy_for_topology


def test_controller_overloaded_reason_is_attributed():
    assert attribute_reason("controller overloaded") == "overload"
    assert attribute_reason("switch overloaded") == "overload"
    assert attribute_reason("authority overloaded") == "overload"
    assert attribute_reason("something novel") == "unattributed"


@pytest.fixture
def saturated_nox():
    """A NOX deployment whose controller CPU is guaranteed to tail-drop."""
    previous = obs_context.current()
    context = fresh_run_context()
    topo = Topology()
    topo.add_switch("s0")
    topo.add_switch("s1")
    topo.add_link("s0", "s1")
    topo.add_host("hsrc", "s0")
    topo.add_host("hdst", "s1")
    rules, host_ips = routing_policy_for_topology(topo, FIVE_TUPLE_LAYOUT)
    nn = NoxNetwork.build(
        topo,
        rules,
        FIVE_TUPLE_LAYOUT,
        controller_rate=500.0,   # tiny CPU budget
        controller_queue=4,      # and almost no queue
        control_latency_s=1e-3,
    )
    # 200 distinct microflows in 20 ms: every packet punts, the CPU can
    # serve ~10 of them, the queue holds 4 — most punts must tail-drop.
    for index in range(200):
        packet = Packet.from_fields(
            FIVE_TUPLE_LAYOUT,
            flow_id=index,
            nw_src=0x0A000000 | index,
            nw_dst=host_ips["hdst"],
            nw_proto=6,
            tp_src=1024 + index,
            tp_dst=80,
        )
        nn.send_at(index * 1e-4, "hsrc", packet)
    nn.run(until=2.0)
    yield nn, context
    obs_context.install(previous)


def test_saturated_nox_drops_are_attributed_to_overload(saturated_nox):
    nn, _ = saturated_nox
    dropped = nn.network.dropped()
    assert nn.controller.messages_dropped > 0, "fixture failed to saturate"
    attribution = attribute_drops(dropped)
    # THE regression: before the fix these drops were "unattributed".
    assert attribution.get("unattributed", 0) == 0
    assert attribution["overload"] == nn.controller.messages_dropped
    overloaded = [r for r in dropped if r.drop_reason == "controller overloaded"]
    assert len(overloaded) == nn.controller.messages_dropped


def test_overload_counters_reconcile_across_surfaces(saturated_nox):
    """Station counter, registry label and controller stat all agree."""
    nn, context = saturated_nox
    metrics = context.metrics
    station_drops = metrics.value(
        "station_queue_drops_total", station="controller.cpu"
    )
    assert station_drops == nn.controller.messages_dropped
    assert (
        metrics.value("packets_dropped_total", reason="overload")
        == nn.controller.messages_dropped
    )


def test_throughput_summary_surfaces_overload():
    """Experiment summaries must state the overload loss, not imply it."""
    from repro.experiments.throughput import run_throughput

    # Enough flows to overflow the controller's 1024-deep CPU queue at a
    # rate far beyond its service capacity.
    result = run_throughput(rates=[1.2e6], flows_per_point=1500)
    assert result.notes["nox_overload_drops"] > 0
    assert "overload" in result.notes["nox_drop_attribution"]
    assert result.notes["nox_drop_attribution"].get("unattributed", 0) == 0
