"""Parallel sweep runner, seed derivation and the artifact cache.

The property under test everywhere: nothing observable — results,
metrics, seeds — may depend on how many workers ran the sweep or in
what order they finished.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import metrics_document
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT as _LAYOUT
from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.parallel import (
    ArtifactCache,
    SweepRunner,
    classbench_ruleset,
    configure_artifact_cache,
    derive_seed,
    host_provenance,
    resolve_jobs,
)
from repro.parallel.seeds import canonical_key


@pytest.fixture(autouse=True)
def _fresh_obs_and_cache():
    """Isolate every test: fresh run context, memory-only artifact cache."""
    previous = obs_context.current()
    fresh_run_context()
    configure_artifact_cache(None)
    yield
    configure_artifact_cache(None)
    obs_context.install(previous)


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(7, ("replicate", 3)) == derive_seed(7, ("replicate", 3))

    def test_depends_on_root_and_key(self):
        seeds = {
            derive_seed(root, ("replicate", index))
            for root in (0, 1, 7)
            for index in range(16)
        }
        assert len(seeds) == 48  # no collisions across roots or indices

    def test_in_range(self):
        for index in range(64):
            seed = derive_seed(1, index)
            assert 0 <= seed < 2 ** 63

    def test_dict_key_order_irrelevant(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_list_and_tuple_agree(self):
        assert canonical_key([1, "x", [2]]) == canonical_key((1, "x", (2,)))

    def test_bool_distinct_from_int(self):
        assert canonical_key(True) != canonical_key(1)

    def test_unhashable_payloads_rejected(self):
        with pytest.raises(TypeError):
            canonical_key(object())

    @settings(max_examples=80, deadline=None)
    @given(
        root=st.integers(min_value=0, max_value=2 ** 31),
        key=st.one_of(
            st.integers(),
            st.text(max_size=20),
            st.tuples(st.text(max_size=8), st.integers()),
        ),
    )
    def test_prop_deterministic_and_bounded(self, root, key):
        seed = derive_seed(root, key)
        assert seed == derive_seed(root, key)
        assert 0 <= seed < 2 ** 63


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_memory_hit_returns_same_object(self):
        cache = ArtifactCache()
        calls = []
        first = cache.get("k", {"a": 1}, lambda: calls.append(1) or [1, 2, 3])
        second = cache.get("k", {"a": 1}, lambda: calls.append(1) or [9, 9, 9])
        assert first is second == [1, 2, 3]
        assert len(calls) == 1

    def test_params_distinguish(self):
        cache = ArtifactCache()
        assert cache.get("k", {"a": 1}, lambda: "one") == "one"
        assert cache.get("k", {"a": 2}, lambda: "two") == "two"

    def test_disk_hit_across_instances(self, tmp_path):
        first = ArtifactCache(str(tmp_path))
        built = first.get("rules", {"n": 4}, lambda: list(range(4)))
        second = ArtifactCache(str(tmp_path))
        loaded = second.get("rules", {"n": 4}, lambda: pytest.fail("rebuilt"))
        assert loaded == built
        assert loaded is not built  # a disk copy, not the same object

    def test_disk_opt_out(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.get("identity-bound", {"n": 1}, lambda: [1], disk=False)
        assert not list(tmp_path.rglob("*.pkl"))

    def test_counters(self, tmp_path):
        context = fresh_run_context()
        cache = ArtifactCache(str(tmp_path))
        cache.get("k", {"a": 1}, lambda: "v")      # build
        cache.get("k", {"a": 1}, lambda: "v")      # memory
        ArtifactCache(str(tmp_path)).get("k", {"a": 1}, lambda: "v")  # disk
        snapshot = context.metrics.snapshot()
        events = snapshot["counters"]
        assert events["artifact_cache_events_total{kind=k,outcome=build}"] == 1
        assert events["artifact_cache_events_total{kind=k,outcome=memory}"] == 1
        assert events["artifact_cache_events_total{kind=k,outcome=disk}"] == 1

    def test_classbench_builder_returns_fresh_list(self):
        first = classbench_ruleset("acl", count=50, seed=9, layout=_LAYOUT)
        second = classbench_ruleset("acl", count=50, seed=9, layout=_LAYOUT)
        assert first is not second
        assert all(a is b for a, b in zip(first, second))  # rules shared

    def test_excluded_from_metrics_document(self):
        from repro.experiments.common import ExperimentResult

        context = fresh_run_context()
        classbench_ruleset("acl", count=20, seed=9, layout=_LAYOUT)
        document = metrics_document(
            ExperimentResult(name="x", title="x"), context=context
        )
        assert not any(
            key.startswith("artifact_cache_")
            for key in document["metrics"]["counters"]
        )


# ---------------------------------------------------------------------------
# Sweep runner
# ---------------------------------------------------------------------------


def _square_and_count(x):
    """A sweep point that returns a value and emits metrics."""
    obs_context.current_registry().counter("points_total", parity=str(x % 2)).inc()
    obs_context.current_registry().histogram("point_value", [1, 10, 100]).observe(x)
    return x * x


def _report_seed(seed):
    return seed


def _worker_pid(x):
    return os.getpid()


class TestSweepRunner:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_results_in_point_order(self):
        params = [dict(x=x) for x in range(8)]
        assert SweepRunner(3).map(_square_and_count, params) == [
            x * x for x in range(8)
        ]

    def test_parallel_metrics_identical_to_serial(self):
        params = [dict(x=x) for x in range(10)]

        serial_context = fresh_run_context()
        serial = SweepRunner(1).map(_square_and_count, params)
        serial_snapshot = serial_context.metrics.snapshot()

        parallel_context = fresh_run_context()
        parallel = SweepRunner(4).map(_square_and_count, params)
        parallel_snapshot = parallel_context.metrics.snapshot()

        assert parallel == serial
        assert parallel_snapshot == serial_snapshot

    def test_pool_actually_used_when_possible(self):
        pids = SweepRunner(2).map(_worker_pid, [dict(x=0), dict(x=1)])
        # Workers are separate processes (unless the host denies pools,
        # in which case the runner degrades to serial — also acceptable).
        assert len(pids) == 2

    def test_tracing_forces_inline_execution(self):
        fresh_run_context(trace=True)
        pids = SweepRunner(4).map(_worker_pid, [dict(x=x) for x in range(3)])
        assert set(pids) == {os.getpid()}

    def test_seeds_independent_of_worker_count(self):
        keys = [("replicate", index) for index in range(6)]
        serial = SweepRunner(1).map_seeded(_report_seed, keys, root_seed=5)
        parallel = SweepRunner(3).map_seeded(_report_seed, keys, root_seed=5)
        assert serial == parallel
        assert serial == [derive_seed(5, key) for key in keys]
        assert len(set(serial)) == len(keys)

    def test_seeds_independent_of_key_insertion_order(self):
        keys = [("replicate", index) for index in range(6)]
        forward = SweepRunner(1).map_seeded(_report_seed, keys, root_seed=5)
        backward = SweepRunner(1).map_seeded(
            _report_seed, list(reversed(keys)), root_seed=5
        )
        assert forward == list(reversed(backward))


# ---------------------------------------------------------------------------
# End-to-end: experiments under jobs>1 reproduce the serial run exactly
# ---------------------------------------------------------------------------


class TestExperimentDeterminism:
    def _delay_document(self, jobs):
        from repro.experiments.delay import run_delay

        context = fresh_run_context()
        result = run_delay(flows=20, jobs=jobs)
        return json.dumps(
            metrics_document(result, context=context), sort_keys=True
        ), result.table_rows

    def test_delay_metrics_document_byte_identical(self):
        serial_doc, serial_rows = self._delay_document(jobs=1)
        parallel_doc, parallel_rows = self._delay_document(jobs=2)
        assert parallel_doc == serial_doc
        assert parallel_rows == serial_rows

    def test_scaling_series_identical(self):
        from repro.experiments.scaling import run_scaling

        kwargs = dict(authority_counts=[1, 2], flows_per_point=120)
        serial = run_scaling(jobs=1, **kwargs)
        parallel = run_scaling(jobs=2, **kwargs)
        for a, b in zip(serial.series, parallel.series):
            assert a.label == b.label
            assert a.x == b.x
            assert a.y == b.y

    def test_chaos_replicates_reproduce_serial(self):
        from repro.experiments.chaos import run_chaos_replicates

        kwargs = dict(rate=600.0, duration=0.25)
        serial = run_chaos_replicates(
            replicates=2, root_seed=11, jobs=1, **kwargs
        )
        parallel = run_chaos_replicates(
            replicates=2, root_seed=11, jobs=2, **kwargs
        )
        assert parallel == serial
        for replicate in serial:
            assert replicate["invariant_violations"] == 0
            assert replicate["unaccounted_packets"] == 0
            assert replicate["drop_attribution"].get("unattributed", 0) == 0


# ---------------------------------------------------------------------------
# Host provenance
# ---------------------------------------------------------------------------


def test_host_provenance_shape():
    info = host_provenance(jobs=4)
    assert info["jobs"] == 4
    assert info["cpu_count"] >= 1
    assert info["cpu_model"]
    assert info["python"]
    info_no_jobs = host_provenance()
    assert "jobs" not in info_no_jobs
