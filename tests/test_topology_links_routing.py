"""Unit tests for topology construction, links and routing."""

import pytest

from repro.flowspace import Packet, TWO_FIELD_LAYOUT
from repro.net import EventScheduler, LinkSpec, Topology, TopologyBuilder, compute_routes
from repro.net.links import Link


class TestLinkSpec:
    def test_transfer_delay(self):
        spec = LinkSpec(propagation_s=1e-3, bandwidth_bps=8e6)
        # 1000 bytes at 8 Mb/s = 1 ms serialization + 1 ms propagation.
        assert spec.transfer_delay(1000) == pytest.approx(2e-3)


class TestLink:
    def test_delivery_after_delay(self):
        sched = EventScheduler()
        arrivals = []
        spec = LinkSpec(propagation_s=1e-3, bandwidth_bps=1e9)
        link = Link("a", "b", spec, sched, lambda dst, pkt: arrivals.append((sched.now, dst)))
        packet = Packet.from_fields(TWO_FIELD_LAYOUT)
        link.send(packet)
        sched.run()
        assert len(arrivals) == 1
        time, dst = arrivals[0]
        assert dst == "b"
        assert time == pytest.approx(spec.transfer_delay(packet.size_bytes))
        assert link.packets_carried == 1
        assert packet.hops == 0  # hops counted by SimNetwork, not Link


class TestTopology:
    def test_add_and_query(self):
        topo = Topology()
        topo.add_switch("s0")
        topo.add_switch("s1")
        topo.add_link("s0", "s1")
        topo.add_host("h0", "s0")
        assert topo.switches() == ["s0", "s1"]
        assert topo.hosts() == ["h0"]
        assert topo.host_attachment("h0") == "s0"
        assert topo.edge_switches() == ["s0"]
        assert topo.is_connected()

    def test_unknown_nodes_rejected(self):
        topo = Topology()
        topo.add_switch("s0")
        with pytest.raises(KeyError):
            topo.add_link("s0", "nope")
        with pytest.raises(KeyError):
            topo.add_host("h0", "nope")

    def test_host_attachment_requires_switch(self):
        topo = Topology()
        topo.add_switch("s0")
        with pytest.raises(ValueError):
            topo.host_attachment("s0")  # not a host

    def test_remove_link(self):
        topo = TopologyBuilder.linear(3)
        topo.remove_link("s0", "s1")
        assert not topo.is_connected()


class TestBuilders:
    def test_single_switch(self):
        topo = TopologyBuilder.single_switch(hosts=3)
        assert len(topo.switches()) == 1
        assert len(topo.hosts()) == 3

    def test_linear(self):
        topo = TopologyBuilder.linear(4, hosts_per_switch=2)
        assert len(topo.switches()) == 4
        assert len(topo.hosts()) == 8
        assert topo.is_connected()

    def test_linear_needs_a_switch(self):
        with pytest.raises(ValueError):
            TopologyBuilder.linear(0)

    def test_star(self):
        topo = TopologyBuilder.star(5)
        assert len(topo.switches()) == 6
        assert topo.graph.degree["hub"] == 5

    def test_campus_structure(self):
        topo = TopologyBuilder.three_tier_campus(
            core_count=2, distribution_count=3, access_per_distribution=2,
            hosts_per_access=2,
        )
        assert len([s for s in topo.switches() if s.startswith("core")]) == 2
        assert len([s for s in topo.switches() if s.startswith("dist")]) == 3
        assert len([s for s in topo.switches() if s.startswith("acc")]) == 6
        assert len(topo.hosts()) == 12
        assert topo.is_connected()
        # Access switches are dual-homed.
        degrees = [topo.graph.degree[s] for s in topo.switches() if s.startswith("acc")]
        assert all(d >= 2 + 2 for d in degrees)  # 2 dists + 2 hosts

    def test_waxman_connected_and_deterministic(self):
        a = TopologyBuilder.waxman(12, seed=4)
        b = TopologyBuilder.waxman(12, seed=4)
        assert a.is_connected()
        assert sorted(a.graph.edges) == sorted(b.graph.edges)


class TestRouting:
    def test_next_hop_chain(self):
        topo = TopologyBuilder.linear(3)
        routes = compute_routes(topo)
        assert routes.next_hop("s0", "s2") == "s1"
        assert routes.next_hop("s1", "s2") == "s2"
        assert routes.next_hop("s2", "s2") is None

    def test_path_and_hops(self):
        topo = TopologyBuilder.linear(4)
        routes = compute_routes(topo)
        assert routes.path("s0", "s3") == ["s0", "s1", "s2", "s3"]
        assert routes.hop_count("s0", "s3") == 3
        assert routes.hop_count("s0", "s0") == 0
        assert routes.path("s0", "s0") == ["s0"]

    def test_distance_is_latency_sum(self):
        topo = Topology()
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_switch("c")
        topo.add_link("a", "b", LinkSpec(propagation_s=1e-3))
        topo.add_link("b", "c", LinkSpec(propagation_s=2e-3))
        routes = compute_routes(topo)
        assert routes.distance("a", "c") == pytest.approx(3e-3)

    def test_prefers_lower_latency_path(self):
        topo = Topology()
        for name in "abc":
            topo.add_switch(name)
        topo.add_link("a", "c", LinkSpec(propagation_s=10e-3))  # direct but slow
        topo.add_link("a", "b", LinkSpec(propagation_s=1e-3))
        topo.add_link("b", "c", LinkSpec(propagation_s=1e-3))
        routes = compute_routes(topo)
        assert routes.path("a", "c") == ["a", "b", "c"]

    def test_unreachable(self):
        topo = Topology()
        topo.add_switch("a")
        topo.add_switch("b")
        routes = compute_routes(topo)
        assert routes.next_hop("a", "b") is None
        assert routes.distance("a", "b") == float("inf")
        assert routes.path("a", "b") == []
        assert routes.hop_count("a", "b") == -1
        assert not routes.reachable("a", "b")

    def test_routes_include_hosts(self):
        topo = TopologyBuilder.linear(2, hosts_per_switch=1)
        routes = compute_routes(topo)
        assert routes.reachable("h0", "h1")
