"""Golden-regression tests: cheap experiment configs vs checked-in metrics.

Each test re-runs a scaled-down configuration of one experiment inside a
fresh observability context, builds the canonical metrics document
(:func:`repro.experiments.common.metrics_document`), and diffs it —
verbatim, after a JSON round-trip — against ``tests/goldens/``.  Any
behavioural drift in the simulator (delivery counts, drop attribution,
pipeline stage mix, control-channel retries) shows up as a golden diff
instead of a silent change.

Refresh the goldens deliberately with::

    PYTHONPATH=src python -m pytest tests/test_golden_results.py --update-goldens
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.common import metrics_document
from repro.obs import context as obs_context
from repro.obs import fresh_run_context

GOLDENS_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.fixture
def run_context():
    """A fresh observability context, restored to the previous one after.

    Telemetry is on, so the goldens also pin the ``difane-telemetry/1``
    section: window boundaries, per-window counter deltas, probe levels
    and health findings are all part of the regression surface.
    """
    previous = obs_context.current()
    context = fresh_run_context(trace=True, telemetry=True)
    yield context
    obs_context.install(previous)


def _golden_check(result, context, update: bool) -> None:
    document = json.loads(json.dumps(metrics_document(result, context=context)))
    path = GOLDENS_DIR / f"{result.name}-metrics.json"
    if update:
        GOLDENS_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden rewritten: {path.name}")
    assert path.exists(), (
        f"missing golden {path}; run with --update-goldens to create it"
    )
    golden = json.loads(path.read_text())
    assert document == golden, (
        f"metrics document for {result.name} drifted from {path.name}; "
        "if the change is intentional, refresh with --update-goldens"
    )


def _run_a6():
    from repro.experiments.failover import run_failover_transient

    return run_failover_transient(rate=1_500.0, duration=0.3, failure_time=0.15)


def _run_c1():
    from repro.experiments.chaos import run_chaos_soak

    return run_chaos_soak(rate=800.0, duration=0.3)


def _run_e4():
    from repro.experiments.delay import run_delay

    return run_delay(flows=40)


def _run_c2():
    from repro.experiments.chaos import run_rebalance_soak

    return run_rebalance_soak(rate=2_000.0, duration=0.5, rebalance=True)


def _run_c2_static():
    from repro.experiments.chaos import run_rebalance_soak

    return run_rebalance_soak(rate=2_000.0, duration=0.5, rebalance=False)


def _run_m1():
    # The pinned-scale M1 config: sketch observability on, so the golden
    # also pins the "sketches"/"top_k"/"fixed_histograms" registry
    # sections and the sketch telemetry probe levels.
    from repro.experiments.streaming import run_streaming_soak

    return run_streaming_soak(
        hosts=4096, edge_switches=4, epochs=40, burst_size=64,
        rules_per_switch=16, sketch=True,
    )


def _run_e8c():
    # Pinned at the module's default (golden) scale: 3 workloads × 5
    # policies × 2 capacities of full event-driven soaks.  Pins the
    # whole ablation surface — miss rates, penalty percentiles, install
    # overhead, eviction-churn split, and the cost-vs-LRU deltas.
    from repro.experiments.cachingablation import run_caching_ablation

    return run_caching_ablation()


def _run_e9q():
    # Golden-scale E9: three protection modes over the same flash-crowd
    # stream.  Pins the per-class counters, SLO summaries and the full
    # finding sequence — the unprotected run's slo-burn/slo-exhausted
    # findings and the protected run's clean budget are both part of the
    # regression surface.
    from repro.experiments.qos import run_qos_slo

    return run_qos_slo()


@pytest.mark.parametrize(
    "runner",
    [
        _run_a6, _run_c1, _run_e4, _run_c2, _run_c2_static, _run_m1,
        _run_e8c, _run_e9q,
    ],
    ids=[
        "A6-failover-transient", "C1-chaos-soak", "E4-delay",
        "C2-rebalance-soak", "C2-static-soak", "M1-streaming-soak",
        "E8-caching-ablation", "E9-qos-slo",
    ],
)
def test_golden_metrics(runner, run_context, update_goldens):
    result = runner()
    _golden_check(result, run_context, update_goldens)


def test_golden_runs_are_deterministic():
    """The premise of golden testing: two identical runs, identical docs."""
    documents = []
    previous = obs_context.current()
    try:
        for _ in range(2):
            context = fresh_run_context(trace=True, telemetry=True)
            result = _run_e4()
            documents.append(
                json.loads(json.dumps(metrics_document(result, context=context)))
            )
    finally:
        obs_context.install(previous)
    assert documents[0] == documents[1]


def test_parallel_telemetry_matches_serial():
    """``--jobs 2`` telemetry must be byte-identical to ``--jobs 1``.

    Worker recorders dump their windows and the parent merges them
    window-wise (counter deltas sum, probe levels max); because both
    operations are associative and commutative, the merged section —
    and therefore the serialized document — cannot depend on worker
    scheduling.
    """
    from repro.experiments.delay import run_delay

    texts = []
    previous = obs_context.current()
    try:
        for jobs in (1, 2):
            context = fresh_run_context(trace=True, telemetry=True)
            result = run_delay(flows=40, jobs=jobs)
            document = metrics_document(result, context=context)
            assert document["telemetry"]["windows"], "telemetry never sampled"
            texts.append(json.dumps(document, indent=2, sort_keys=True))
    finally:
        obs_context.install(previous)
    assert texts[0] == texts[1]
