"""Tests for the trace-driven cache simulators."""

import pytest

from repro.baselines import simulate_microflow_cache, simulate_wildcard_cache
from repro.flowspace import Drop, Forward, Match, Rule, TWO_FIELD_LAYOUT
from repro.workloads.classbench import generate_classbench
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT

L = TWO_FIELD_LAYOUT


def tiny_policy():
    return [
        Rule(Match.build(L, f1="0000xxxx"), 20, Forward("a")),
        Rule(Match.build(L, f2="0000xxxx"), 10, Forward("b")),
        Rule(Match.any(L), 0, Drop()),
    ]


class TestMicroflowCache:
    def test_repeat_flow_hits(self):
        policy = tiny_policy()
        sequence = [0x0101, 0x0101, 0x0101]
        result = simulate_microflow_cache(policy, L, sequence, cache_size=4)
        assert result.misses == 1
        assert result.hits == 2

    def test_distinct_flows_each_miss(self):
        policy = tiny_policy()
        sequence = [0x0101, 0x0202, 0x0303]
        result = simulate_microflow_cache(policy, L, sequence, cache_size=4)
        assert result.misses == 3
        assert result.hits == 0

    def test_lru_eviction(self):
        policy = tiny_policy()
        sequence = [0x0101, 0x0202, 0x0303, 0x0101]  # cache of 2: 0x0101 evicted
        result = simulate_microflow_cache(policy, L, sequence, cache_size=2)
        assert result.misses == 4
        assert result.evictions == 2

    def test_zero_cache(self):
        policy = tiny_policy()
        result = simulate_microflow_cache(policy, L, [0x0101] * 5, cache_size=0)
        assert result.misses == 5
        assert result.miss_rate == 1.0

    def test_unmatched_counted_separately(self):
        policy = tiny_policy()[:2]  # no default rule
        result = simulate_microflow_cache(policy, L, [0xFFFF], cache_size=4)
        assert result.unmatched == 1
        assert result.misses == 0


class TestWildcardCache:
    def test_single_fragment_covers_flow_family(self):
        policy = tiny_policy()
        # All these hit rule a (f1=0000xxxx, f2 outside 0000xxxx).
        sequence = [0x01FF, 0x02FF, 0x03FF, 0x04FF]
        result = simulate_wildcard_cache(policy, L, sequence, cache_size=4)
        # One miss builds the fragment; the siblings all hit it.
        assert result.misses <= 2
        assert result.hits >= 2

    def test_beats_microflow_on_same_trace(self):
        policy = generate_classbench("acl", count=100, seed=9, layout=FIVE_TUPLE_LAYOUT)
        from repro.workloads.traffic import flow_headers_for_policy, packet_sequence
        flows = flow_headers_for_policy(policy, 200, seed=1)
        sequence = packet_sequence(flows, 2000, alpha=1.0, seed=2)
        wildcard = simulate_wildcard_cache(policy, FIVE_TUPLE_LAYOUT, sequence, 20)
        microflow = simulate_microflow_cache(policy, FIVE_TUPLE_LAYOUT, sequence, 20)
        assert wildcard.miss_rate < microflow.miss_rate

    def test_respects_dependency_chains(self):
        """Caching rule a's fragment must not capture rule-overlap traffic."""
        policy = tiny_policy()
        overlap_point = 0x0101  # f1 and f2 both small: rule a wins (prio 20)
        a_only = 0x01FF
        b_only = 0xFF01
        result = simulate_wildcard_cache(
            policy, L, [a_only, b_only, overlap_point], cache_size=8
        )
        # All three classified; semantics checked implicitly by construction.
        assert result.packets == 3
        assert result.misses + result.hits == 3

    def test_zero_cache(self):
        policy = tiny_policy()
        result = simulate_wildcard_cache(policy, L, [0x01FF] * 5, cache_size=0)
        assert result.miss_rate == 1.0

    def test_miss_rate_monotone_in_cache_size(self):
        policy = generate_classbench("acl", count=100, seed=10, layout=FIVE_TUPLE_LAYOUT)
        from repro.workloads.traffic import flow_headers_for_policy, packet_sequence
        flows = flow_headers_for_policy(policy, 150, seed=3)
        sequence = packet_sequence(flows, 1500, alpha=1.0, seed=4)
        rates = [
            simulate_wildcard_cache(policy, FIVE_TUPLE_LAYOUT, sequence, size).miss_rate
            for size in (5, 20, 80)
        ]
        assert rates[0] >= rates[1] >= rates[2]

    def test_result_rates_sum(self):
        policy = tiny_policy()
        result = simulate_wildcard_cache(policy, L, [0x01FF, 0x01FE], cache_size=4)
        assert result.hit_rate + result.miss_rate == pytest.approx(1.0)
