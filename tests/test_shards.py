"""Sharded control plane: leases, takeover, deferral, two-phase migration."""

import pytest

from repro.core import DifaneNetwork
from repro.core.partition import assign_partitions_to_shards
from repro.core.shards import (
    PartitionMigrator,
    ShardedControlPlane,
    attach_sharded_control_plane,
)
from repro.flowspace import FIVE_TUPLE_LAYOUT
from repro.net import TopologyBuilder
from repro.net.failures import FailureInjector
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def build_star(replication=2, partitions_per_authority=2):
    topo = TopologyBuilder.star(4, hosts_per_leaf=1)
    rules, host_ips = routing_policy_for_topology(topo, L)
    dn = DifaneNetwork.build(
        topo, rules, L,
        authority_switches=["s0", "s1"],
        replication=replication,
        partitions_per_authority=partitions_per_authority,
        cache_capacity=0,
        redirect_rate=None,
        loss_seed=5,
    )
    return dn, topo, host_ips


class TestOwnershipDerivation:
    def test_matches_seeded_partition_assignment(self):
        dn, _, _ = build_star()
        plane = attach_sharded_control_plane(dn.controller, n_shards=2, seed=7,
                                             rebalance=False)
        pids = sorted(dn.controller._states)
        expected = assign_partitions_to_shards(pids, 2, seed=7)
        assert plane.ownership == {pid: f"shard{expected[pid]}" for pid in pids}

    def test_different_seed_can_differ_same_seed_identical(self):
        maps = []
        for seed in (7, 7, 8):
            dn, _, _ = build_star()
            plane = attach_sharded_control_plane(dn.controller, n_shards=2,
                                                 seed=seed, rebalance=False)
            maps.append(dict(plane.ownership))
        assert maps[0] == maps[1]

    def test_validates_parameters(self):
        dn, _, _ = build_star()
        with pytest.raises(ValueError):
            ShardedControlPlane(dn.controller, n_shards=0)
        with pytest.raises(ValueError):
            ShardedControlPlane(dn.controller, miss_threshold=0)


class TestLeaseTakeover:
    def attach(self, dn, **kwargs):
        kwargs.setdefault("n_shards", 3)
        kwargs.setdefault("seed", 4)
        kwargs.setdefault("lease_interval_s", 0.02)
        kwargs.setdefault("rebalance", False)
        return attach_sharded_control_plane(dn.controller, **kwargs)

    def test_leader_kill_elects_lowest_live_id(self):
        dn, _, _ = build_star()
        plane = self.attach(dn)
        dn.network.scheduler.schedule_at(0.1, plane.kill_shard, "shard0")
        dn.run(until=0.5)
        assert plane.leader_name == "shard1"
        assert plane.term == 1
        elections = [e for e in plane.events if e["event"] == "election"]
        assert len(elections) == 1
        # Takeover waits out the lease timeout: detection is emergent.
        assert elections[0]["time"] >= 0.1 + plane.timeout_s
        # Every partition ends up owned by a live shard.
        for pid in plane.ownership:
            assert plane.shards[plane.ownership[pid]].alive

    def test_takeover_is_deterministic(self):
        def run_once():
            dn, _, _ = build_star()
            plane = self.attach(dn)
            dn.network.scheduler.schedule_at(0.1, plane.kill_shard, "shard0")
            dn.run(until=0.5)
            return plane.events, dict(plane.ownership), plane.term

        assert run_once() == run_once()

    def test_follower_kill_triggers_leader_adoption(self):
        dn, _, _ = build_star()
        plane = self.attach(dn, n_shards=2)
        victim = "shard1"
        owned_before = [p for p, s in plane.ownership.items() if s == victim]
        dn.network.scheduler.schedule_at(0.1, plane.kill_shard, victim)
        dn.run(until=0.5)
        assert owned_before  # the test needs the follower to own something
        for pid in owned_before:
            assert plane.ownership[pid] != victim
        kinds = [e["event"] for e in plane.events]
        assert "follower-dead" in kinds
        assert "adoption" in kinds
        assert plane.term == 0  # no election: the leader never died

    def test_restored_leader_resumes_without_election(self):
        dn, _, _ = build_star()
        plane = self.attach(dn, n_shards=2)
        scheduler = dn.network.scheduler
        scheduler.schedule_at(0.1, plane.kill_shard, "shard0")
        # Repair lands before the lease goes stale on the follower.
        scheduler.schedule_at(0.12, plane.restore_shard, "shard0")
        dn.run(until=0.5)
        assert plane.leader_name == "shard0"
        assert plane.term == 0
        assert not [e for e in plane.events if e["event"] == "election"]


class TestDeferredFailover:
    def test_dead_shard_defers_until_adoption(self):
        dn, _, _ = build_star(replication=1)
        plane = attach_sharded_control_plane(
            dn.controller, n_shards=2, seed=4, lease_interval_s=0.02,
            rebalance=False,
        )
        # Pick an authority whose partitions are (at least partly) owned
        # by the follower shard, then kill that shard before the switch.
        follower_pids = [p for p, s in plane.ownership.items() if s == "shard1"]
        assert follower_pids
        injector = FailureInjector(dn.network)
        scheduler = dn.network.scheduler

        def kill_authority():
            victim_switch = dn.controller._states[follower_pids[0]].owners[0]
            injector.fail_switch(victim_switch)
            dn.controller.dispatch_authority_failure(victim_switch)

        scheduler.schedule_at(0.05, plane.kill_shard, "shard1")
        scheduler.schedule_at(0.06, kill_authority)
        dn.run(until=0.07)
        # The shard is dead and not yet adopted: failover must be queued,
        # with the partition still pointing at the dead switch.
        assert plane.pending_failovers
        deferred_pid = plane.pending_failovers[0][0]
        assert not plane.can_act_on(deferred_pid)
        dn.run(until=0.5)
        # Adoption landed and drained the queue through the real failover.
        assert plane.pending_failovers == []
        assert plane.deferred_failovers_applied >= 1
        assert dn.controller.assert_all_partitions_owned() > 0

    def test_live_shard_fails_over_immediately(self):
        dn, _, _ = build_star(replication=1)
        plane = attach_sharded_control_plane(
            dn.controller, n_shards=1, seed=4, rebalance=False,
        )
        injector = FailureInjector(dn.network)
        injector.fail_switch("s0")
        repointed = dn.controller.dispatch_authority_failure("s0")
        assert repointed > 0
        assert plane.pending_failovers == []
        assert dn.controller.assert_all_partitions_owned() > 0


class TestTwoPhaseMigration:
    def test_config_path_migration_is_atomic(self):
        # No control channel: install/flip/retire all run synchronously.
        dn, _, _ = build_star(replication=1)
        controller = dn.controller
        migrator = PartitionMigrator(controller)
        state = controller._states[0]
        source = state.owners[0]
        target = "s2"  # promoted from outside the pool
        migration = migrator.migrate(0, target, reason="manual")
        # Install and flip are synchronous without a channel; the retire
        # still waits out the redirect-drain grace on the event clock.
        assert migration is not None and migration.phase == "retire"
        assert state.owners[0] == target
        dn.run(until=0.5)
        assert migration.phase == "done"
        assert source not in state.owners
        assert source not in state.installed
        assert target in controller.authority_switches
        assert controller.assert_all_partitions_owned() > 0
        # Physical TCAMs agree: fragments moved, source region emptied.
        report = dn.tcam_report()
        assert report[target]["authority"] == len(state.installed[target])

    def test_channel_migration_runs_all_three_phases(self):
        dn, _, _ = build_star(replication=1)
        controller = dn.controller
        controller.connect_control_plane(max_retries=None)
        boundary_checks = []

        def on_complete(migration):
            boundary_checks.append(controller.assert_all_partitions_owned())

        migrator = PartitionMigrator(
            controller, retire_grace_s=0.01, on_complete=on_complete
        )
        state = controller._states[0]
        source = state.owners[0]
        migration = migrator.migrate(0, "s2")
        # Install phase: the target joined as a backup, so ownership is
        # whole even before any FlowMod lands.
        assert migration.phase == "install"
        assert state.owners == [source, "s2"]
        assert controller.assert_all_partitions_owned() > 0
        dn.run(until=1.0)
        assert migration.phase == "done"
        assert migration.flipped_at > migration.started_at
        # Retire waits out the redirect drain grace after the flip.
        assert migration.completed_at >= migration.flipped_at + 0.01
        assert state.owners == ["s2"]
        assert boundary_checks and all(n > 0 for n in boundary_checks)
        # The source's fragments were withdrawn over the channel.
        assert dn.tcam_report()[source]["authority"] == sum(
            len(s.installed.get(source, [])) for s in controller._states.values()
        )

    def test_flip_moves_load_history(self):
        dn, _, _ = build_star(replication=1)
        controller = dn.controller
        state = controller._states[0]
        source = state.owners[0]
        old_fragments = state.installed[source]
        old_fragments[0].packet_count = 42
        old_fragments[0].byte_count = 4200
        migrator = PartitionMigrator(controller)
        migrator.migrate(0, "s2")
        new_fragments = state.installed["s2"]
        assert new_fragments[0].packet_count == 42
        assert new_fragments[0].byte_count == 4200
        assert old_fragments[0].packet_count == 0

    def test_migration_to_current_primary_is_a_noop(self):
        dn, _, _ = build_star(replication=1)
        migrator = PartitionMigrator(dn.controller)
        primary = dn.controller._states[0].owners[0]
        assert migrator.migrate(0, primary) is None
        assert migrator.migrate(99, "s2") is None  # unknown partition

    def test_concurrent_migration_of_same_partition_rejected(self):
        dn, _, _ = build_star(replication=1)
        controller = dn.controller
        controller.connect_control_plane(max_retries=None)
        migrator = PartitionMigrator(controller)
        assert migrator.migrate(0, "s2") is not None
        assert migrator.migrate(0, "s3") is None  # still in flight
        dn.run(until=1.0)
        assert migrator.migrate(0, "s3") is not None  # done: next move ok

    def test_target_killed_mid_install_aborts_cleanly(self):
        dn, _, _ = build_star(replication=1)
        controller = dn.controller
        controller.connect_control_plane(max_retries=3)
        migrator = PartitionMigrator(controller)
        state = controller._states[0]
        source = state.owners[0]
        migration = migrator.migrate(0, "s2")
        assert migration.phase == "install"
        # The target dies before any install ack returns.
        FailureInjector(dn.network).fail_switch("s2")
        dn.run(until=1.0)
        assert migration.phase == "aborted"
        assert migration.pid not in migrator.active
        assert state.owners == [source]
        assert "s2" not in state.installed
        assert controller.assert_all_partitions_owned() > 0

    def test_dead_source_skips_retire(self):
        # Orphan heal: the source died, so there is nothing to withdraw —
        # the migration completes at the flip.  One partition per
        # authority so the dead source owns nothing else.
        dn, _, _ = build_star(replication=1, partitions_per_authority=1)
        controller = dn.controller
        migrator = PartitionMigrator(controller)
        state = controller._states[0]
        source = state.owners[0]
        FailureInjector(dn.network).fail_switch(source)
        migration = migrator.migrate(0, "s2", reason="orphan")
        assert migration.phase == "done"
        assert migration.completed_at == migration.flipped_at
        assert state.owners == ["s2"]
        assert controller.assert_all_partitions_owned() > 0


class TestExportShape:
    def test_export_is_schema_stable(self):
        dn, _, _ = build_star()
        plane = attach_sharded_control_plane(
            dn.controller, n_shards=2, seed=4, spares=("s2",), rebalance=True,
        )
        dn.run(until=0.2)
        export = plane.export()
        assert export["schema"] == "difane-control-plane/1"
        assert {s["name"] for s in export["shards"]} == {"shard0", "shard1"}
        assert sum(len(s["partitions"]) for s in export["shards"]) == len(
            dn.controller._states
        )
        assert export["rebalancer"]["cycles"] > 0
        for key in ("leader", "term", "events", "channel", "migrations"):
            assert key in export
