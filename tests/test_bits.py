"""Unit tests for repro.flowspace.bits."""

import pytest

from repro.flowspace import bits


class TestMaskOfWidth:
    def test_zero_width(self):
        assert bits.mask_of_width(0) == 0

    def test_small_widths(self):
        assert bits.mask_of_width(1) == 0b1
        assert bits.mask_of_width(4) == 0b1111
        assert bits.mask_of_width(8) == 0xFF

    def test_wide(self):
        assert bits.mask_of_width(104) == (1 << 104) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits.mask_of_width(-1)


class TestBitAccess:
    def test_bit_at(self):
        assert bits.bit_at(0b1010, 0) == 0
        assert bits.bit_at(0b1010, 1) == 1
        assert bits.bit_at(0b1010, 3) == 1

    def test_set_bit_on(self):
        assert bits.set_bit(0b0000, 2, 1) == 0b0100

    def test_set_bit_off(self):
        assert bits.set_bit(0b1111, 2, 0) == 0b1011

    def test_set_bit_idempotent(self):
        assert bits.set_bit(0b0100, 2, 1) == 0b0100


class TestPopcount:
    def test_zero(self):
        assert bits.popcount(0) == 0

    def test_dense(self):
        assert bits.popcount(0xFF) == 8

    def test_sparse_wide(self):
        assert bits.popcount((1 << 100) | 1) == 2


class TestPrefixMasks:
    def test_empty_mask_is_prefix(self):
        assert bits.is_contiguous_prefix_mask(0, 8)

    def test_full_mask_is_prefix(self):
        assert bits.is_contiguous_prefix_mask(0xFF, 8)

    def test_high_run_is_prefix(self):
        assert bits.is_contiguous_prefix_mask(0b11100000, 8)

    def test_low_run_is_not_prefix(self):
        assert not bits.is_contiguous_prefix_mask(0b00000111, 8)

    def test_gap_is_not_prefix(self):
        assert not bits.is_contiguous_prefix_mask(0b11011000, 8)

    def test_mask_exceeding_width_is_not_prefix(self):
        assert not bits.is_contiguous_prefix_mask(0x1FF, 8)

    def test_prefix_length(self):
        assert bits.prefix_length(0b11100000, 8) == 3
        assert bits.prefix_length(0, 8) == 0
        assert bits.prefix_length(0xFF, 8) == 8

    def test_prefix_length_rejects_non_prefix(self):
        with pytest.raises(ValueError):
            bits.prefix_length(0b0101, 8)


class TestScanning:
    def test_lowest_set_bit(self):
        assert bits.lowest_set_bit(0) == -1
        assert bits.lowest_set_bit(0b1000) == 3
        assert bits.lowest_set_bit(0b1010) == 1

    def test_highest_set_bit(self):
        assert bits.highest_set_bit(0) == -1
        assert bits.highest_set_bit(0b1000) == 3
        assert bits.highest_set_bit(1 << 99) == 99

    def test_iter_set_bits(self):
        assert list(bits.iter_set_bits(0b101001)) == [0, 3, 5]
        assert list(bits.iter_set_bits(0)) == []

    def test_reverse_bits(self):
        assert bits.reverse_bits(0b0001, 4) == 0b1000
        assert bits.reverse_bits(0b1011, 4) == 0b1101
        assert bits.reverse_bits(0, 8) == 0

    def test_reverse_involution(self):
        for value in (0, 1, 0b1010, 0xAB):
            assert bits.reverse_bits(bits.reverse_bits(value, 8), 8) == value
