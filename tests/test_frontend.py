"""Tests for the operator-facing OpenFlow frontend."""

import pytest

from repro.core import DifaneNetwork
from repro.core.frontend import DifaneFrontend, VIRTUAL_SWITCH
from repro.flowspace import (
    Drop,
    FIVE_TUPLE_LAYOUT,
    Forward,
    Match,
    Packet,
    Rule,
    Ternary,
)
from repro.net import TopologyBuilder
from repro.openflow.messages import (
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    PacketIn,
    StatsRequest,
)
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


@pytest.fixture
def world():
    topo = TopologyBuilder.linear(3, hosts_per_switch=1)
    rules, host_ips = routing_policy_for_topology(topo, L)
    dn = DifaneNetwork.build(
        topo, rules, L, authority_switches=["s1"], cache_capacity=64,
        redirect_rate=None,
    )
    return dn, topo, host_ips, DifaneFrontend(dn.controller)


def ssh_block(host_ips, host="h2", priority=50_000):
    return Rule(
        Match.build(L, nw_dst=Ternary.exact(host_ips[host], 32),
                    nw_proto=Ternary.exact(6, 8),
                    tp_dst=Ternary.exact(22, 16)),
        priority=priority,
        actions=Drop(),
    )


class TestFlowMods:
    def test_add_is_live_immediately(self, world):
        dn, topo, host_ips, frontend = world
        rule = ssh_block(host_ips)
        assert frontend.handle_message(
            FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.ADD, rule=rule)
        ) is None
        assert rule in dn.controller.policy
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h2"], nw_proto=6, tp_src=9, tp_dst=22
        )
        dn.send("h0", packet)
        dn.run()
        assert dn.network.dropped()[-1].drop_reason == "policy drop"

    def test_delete_by_match(self, world):
        dn, topo, host_ips, frontend = world
        rule = ssh_block(host_ips)
        frontend.handle_message(
            FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.ADD, rule=rule)
        )
        frontend.handle_message(
            FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.DELETE,
                    match=rule.match)
        )
        assert rule not in dn.controller.policy
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h2"], nw_proto=6, tp_src=9, tp_dst=22
        )
        dn.send("h0", packet)
        dn.run()
        assert dn.network.delivered()[-1].endpoint == "h2"

    def test_modify_replaces_actions(self, world):
        dn, topo, host_ips, frontend = world
        rule = ssh_block(host_ips)
        frontend.handle_message(
            FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.ADD, rule=rule)
        )
        # Re-point the same match at a forward action instead.
        replacement = Rule(rule.match, rule.priority, Forward("h1"))
        frontend.handle_message(
            FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.MODIFY,
                    rule=replacement)
        )
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h2"], nw_proto=6, tp_src=9, tp_dst=22
        )
        dn.send("h0", packet)
        dn.run()
        assert dn.network.delivered()[-1].endpoint == "h1"

    def test_modify_without_existing_behaves_like_add(self, world):
        dn, topo, host_ips, frontend = world
        rule = ssh_block(host_ips)
        frontend.handle_message(
            FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.MODIFY, rule=rule)
        )
        assert rule in dn.controller.policy

    def test_add_without_rule_is_error(self, world):
        dn, topo, host_ips, frontend = world
        frontend.handle_message(
            FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.ADD)
        )
        assert frontend.errors == 1


class TestStatsAndBarrier:
    def test_stats_reflect_traffic(self, world):
        dn, topo, host_ips, frontend = world
        for sport in (100, 200, 300):
            packet = Packet.from_fields(
                L, nw_dst=host_ips["h2"], nw_proto=6, tp_src=sport, tp_dst=80
            )
            dn.send("h0", packet)
            dn.run()
        reply = frontend.handle_message(StatsRequest(switch=VIRTUAL_SWITCH))
        assert reply.switch == VIRTUAL_SWITCH
        by_rule = {rule: packets for rule, packets, _ in reply.entries}
        routed = [r for r in dn.controller.policy
                  if r.actions.final_forward()
                  and r.actions.final_forward().port == "h2"]
        assert len(routed) == 1
        assert by_rule[routed[0]] == 3

    def test_stats_filter_by_match(self, world):
        dn, topo, host_ips, frontend = world
        target = dn.controller.policy[0]
        reply = frontend.handle_message(
            StatsRequest(switch=VIRTUAL_SWITCH, match=target.match)
        )
        assert [entry[0] for entry in reply.entries] == [target]

    def test_barrier_echoes_xid(self, world):
        dn, topo, host_ips, frontend = world
        request = BarrierRequest(switch=VIRTUAL_SWITCH)
        reply = frontend.handle_message(request)
        assert reply.request_xid == request.xid

    def test_unknown_message_is_error(self, world):
        dn, topo, host_ips, frontend = world
        packet_in = PacketIn(switch="x", packet=Packet.from_fields(L))
        assert frontend.handle_message(packet_in) is None
        assert frontend.errors == 1
