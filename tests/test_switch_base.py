"""Tests for the base data-plane switch machinery."""

import pytest

from repro.flowspace import (
    ActionList,
    Drop,
    Encapsulate,
    Forward,
    Packet,
    SendToController,
    SetField,
    TWO_FIELD_LAYOUT,
)
from repro.net import SimNetwork, TopologyBuilder
from repro.switch.switch import DataPlaneSwitch

L = TWO_FIELD_LAYOUT


class RecorderSwitch(DataPlaneSwitch):
    """Executes a fixed action list against every packet."""

    def __init__(self, name, actions, **kwargs):
        super().__init__(name, **kwargs)
        self.script = actions
        self.processed_at = []

    def process(self, packet):
        self.processed_at.append(self.network.scheduler.now)
        self.execute(packet, self.script)


def build(actions, **kwargs):
    topo = TopologyBuilder.linear(2, hosts_per_switch=1)
    net = SimNetwork(topo)
    switch = RecorderSwitch("s0", actions, **kwargs)
    net.register_node(switch)
    net.register_node(RecorderSwitch("s1", ActionList(Forward("h1"))))
    return net, switch


class TestActionExecution:
    def test_forward_moves_toward_destination(self):
        net, switch = build(ActionList(Forward("h1")))
        net.inject_from_host("h0", Packet.from_fields(L))
        net.run()
        assert net.delivered()[0].endpoint == "h1"

    def test_drop(self):
        net, switch = build(ActionList(Drop()))
        net.inject_from_host("h0", Packet.from_fields(L))
        net.run()
        assert net.dropped()[0].drop_reason == "policy drop"

    def test_set_field_rewrites_header(self):
        delivered_bits = []

        class Probe(RecorderSwitch):
            def process(self, packet):
                super().process(packet)
                delivered_bits.append(packet.field("f1"))

        topo = TopologyBuilder.linear(1, hosts_per_switch=2)
        net = SimNetwork(topo)
        probe = Probe("s0", ActionList(SetField("f1", 0xAB), Forward("h1")))
        net.register_node(probe)
        net.inject_from_host("h0", Packet.from_fields(L, f1=1))
        net.run()
        assert delivered_bits == [0xAB]
        assert net.delivered()[0].endpoint == "h1"

    def test_encapsulate_tunnels(self):
        net, switch = build(ActionList(Encapsulate("s1")))
        packet = Packet.from_fields(L)
        net.inject_from_host("h0", packet)
        net.run()
        # Arrived at s1 still encapsulated; s1's script forwards to h1
        # without decapsulating — delivery happens at the tunnel endpoint
        # resolution (s1 processes it as its own packet).
        assert packet.hops >= 2

    def test_punt_without_controller_drops(self):
        net, switch = build(ActionList(SendToController()))
        net.inject_from_host("h0", Packet.from_fields(L))
        net.run()
        assert "punt" in net.dropped()[0].drop_reason

    def test_empty_action_list_drops(self):
        net, switch = build(ActionList())
        net.inject_from_host("h0", Packet.from_fields(L))
        net.run()
        assert net.dropped()[0].drop_reason == "no terminal action"


class TestCapacity:
    def test_processing_rate_queues(self):
        net, switch = build(ActionList(Forward("h1")), processing_rate=100.0)
        for _ in range(3):
            net.inject_from_host("h0", Packet.from_fields(L))
        net.run()
        assert len(switch.processed_at) == 3
        gaps = [b - a for a, b in zip(switch.processed_at, switch.processed_at[1:])]
        assert all(gap == pytest.approx(0.01, rel=1e-6) for gap in gaps)

    def test_queue_overflow_drops(self):
        net, switch = build(
            ActionList(Forward("h1")), processing_rate=1.0, queue_limit=1
        )
        for _ in range(5):
            net.inject_from_host("h0", Packet.from_fields(L))
        net.run(until=0.5)
        assert switch.packets_dropped_overload > 0
        reasons = {r.drop_reason for r in net.dropped()}
        assert "switch overloaded" in reasons

    def test_forwarding_delay_applies(self):
        net, switch = build(ActionList(Forward("h1")), forwarding_delay_s=1e-3)
        net.inject_from_host("h0", Packet.from_fields(L))
        net.run()
        assert switch.processed_at[0] >= 1e-3
