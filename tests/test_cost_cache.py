"""Cost-aware cache management: indexed-vs-scan equivalence and policy tests.

The PR-9 cache core replaces three per-install linear scans with indexes
(occupancy counter, duplicate map, lazy-stale min-heap).  The contract is
*byte-equivalence*: an indexed :class:`CacheManager` and the scan-backed
:class:`ScanCacheManager` oracle driven through an identical operation
sequence must agree on every victim, survivor, timestamp, and counter.
That contract is property-tested here across all four eviction policies,
alongside the behavioural tests for the COST policy itself, install
batching, and controller budget partitioning.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowspace import (
    Drop,
    Forward,
    Match,
    Packet,
    Rule,
    TWO_FIELD_LAYOUT,
)
from repro.flowspace.rule import RuleKind
from repro.switch import Tcam
from repro.switch.cache import CacheManager, EvictionPolicy, ScanCacheManager

L = TWO_FIELD_LAYOUT

POLICIES = [
    EvictionPolicy.LRU,
    EvictionPolicy.FIFO,
    EvictionPolicy.RANDOM,
    EvictionPolicy.COST,
]


def cache_rule(f1, priority=5, port="x", origin=None, penalty=None):
    rule = Rule(
        Match.build(L, f1=f1), priority, Forward(port),
        kind=RuleKind.CACHE, origin=origin,
    )
    if penalty is not None:
        rule.refetch_penalty_s = penalty
    return rule


def manager(cls=CacheManager, capacity=3, policy=EvictionPolicy.LRU, **kwargs):
    return cls(Tcam(L), capacity=capacity, policy=policy, **kwargs)


# ---------------------------------------------------------------------------
# Property: indexed manager == scan oracle, byte for byte
# ---------------------------------------------------------------------------

op_install = st.tuples(
    st.just("install"),
    st.integers(min_value=0, max_value=5),        # f1 (small: forces dups)
    st.integers(min_value=1, max_value=3),        # priority (heap ties)
    st.sampled_from(["x", "y"]),                  # action (dup key part)
    st.sampled_from([None, 1e-3, 2e-2]),          # refetch penalty stamp
    st.integers(min_value=0, max_value=2),        # origin index
)
op_hit = st.tuples(st.just("hit"), st.integers(min_value=0, max_value=5))
op_expire = st.tuples(st.just("expire"))
op_flush = st.tuples(st.just("flush"))
op_capacity = st.tuples(st.just("capacity"), st.integers(min_value=0, max_value=4))
op_invalidate = st.tuples(st.just("invalidate"), st.integers(min_value=0, max_value=2))

ops_lists = st.lists(
    st.one_of(op_install, op_hit, op_expire, op_flush, op_capacity, op_invalidate),
    min_size=1,
    max_size=40,
)


def apply_ops(cls, policy, ops, origins):
    m = manager(
        cls, capacity=3, policy=policy, seed=7,
        default_idle_timeout=6.0, cost_tau=4.0,
    )
    clock = 0.0
    for op in ops:
        clock += 1.0
        kind = op[0]
        if kind == "install":
            _, f1, priority, port, penalty, origin_idx = op
            m.install(
                cache_rule(f1, priority, port, origin=origins[origin_idx],
                           penalty=penalty),
                now=clock,
            )
        elif kind == "hit":
            m.tcam.lookup(Packet.from_fields(L, f1=op[1]), now=clock)
        elif kind == "expire":
            m.expire(now=clock)
        elif kind == "flush":
            m.flush()
        elif kind == "capacity":
            m.set_capacity(op[1], now=clock)
        elif kind == "invalidate":
            m.invalidate_origin(origins[op[1]])
    return m


def fingerprint(m):
    rules = m.cache_rules()
    scores = None
    if m.policy is EvictionPolicy.COST:
        scores = [m._entries[id(rule)].score for rule in rules]
    return (
        [
            (str(rule.match), str(rule.actions), rule.priority,
             rule.installed_at, rule.last_hit_at, rule.idle_timeout,
             rule.hard_timeout, rule.refetch_penalty_s)
            for rule in rules
        ],
        scores,
        m.occupancy(),
        m.capacity,
        m.inserted,
        m.evicted_capacity,
        m.expired,
        m.invalidated,
        m.evicted,
        m.refetch_penalty_ewma,
    )


@settings(max_examples=60, deadline=None)
@given(ops=ops_lists, policy=st.sampled_from(POLICIES))
def test_prop_indexed_matches_scan_oracle(ops, policy):
    """Identical op sequences → identical state, victims, and counters."""
    origins = [Rule(Match.any(L), 9, Forward(f"o{i}")) for i in range(3)]
    indexed = apply_ops(CacheManager, policy, ops, origins)
    oracle = apply_ops(ScanCacheManager, policy, ops, origins)
    assert fingerprint(indexed) == fingerprint(oracle)


def test_indexed_survives_external_tcam_mutation():
    """evict_if/clear on the TCAM keep the indexes exact (observer hooks)."""
    m = manager(capacity=4)
    installed = [m.install(cache_rule(i), now=float(i)) for i in range(4)]
    m.tcam.evict_if(lambda rule: rule.match.field("f1").value in (0, 2))
    assert m.occupancy() == 2
    assert m._find_duplicate(cache_rule(0)) is None
    assert m._find_duplicate(cache_rule(1)) is installed[1]
    m.tcam.clear()
    assert m.occupancy() == 0
    assert m.install(cache_rule(0), now=9.0) is not None
    assert m.occupancy() == 1


# ---------------------------------------------------------------------------
# Duplicate installs refresh instead of consuming capacity
# ---------------------------------------------------------------------------

class TestDuplicateRefresh:
    @pytest.mark.parametrize(
        "policy", [EvictionPolicy.LRU, EvictionPolicy.COST], ids=["lru", "cost"]
    )
    def test_refreshes_activity_not_install_time(self, policy):
        m = manager(capacity=1, policy=policy, default_hard_timeout=60.0)
        first = m.install(cache_rule(1), now=0.0)
        again = m.install(cache_rule(1), now=5.0)
        assert again is first
        assert first.last_hit_at == 5.0
        assert first.installed_at == 0.0          # hard-timeout base untouched
        assert first.hard_timeout == 60.0
        assert m.occupancy() == 1                 # no capacity consumed
        assert m.inserted == 1
        assert m.evicted == 0                     # and no one was sacrificed

    def test_cost_duplicate_raises_score(self):
        m = manager(capacity=2, policy=EvictionPolicy.COST)
        rule = m.install(cache_rule(1), now=0.0)
        before = m._entries[id(rule)].score
        m.install(cache_rule(1), now=0.5)
        assert m._entries[id(rule)].score > before


# ---------------------------------------------------------------------------
# COST policy behaviour
# ---------------------------------------------------------------------------

class TestCostPolicy:
    def test_evicts_the_cold_entry(self):
        m = manager(capacity=2, policy=EvictionPolicy.COST, cost_tau=10.0)
        hot = m.install(cache_rule(1), now=0.0)
        m.install(cache_rule(2), now=0.0)
        for t in range(1, 6):
            m.tcam.lookup(Packet.from_fields(L, f1=1), now=float(t))
        m.install(cache_rule(3), now=6.0)
        remaining = {r.match.field("f1").value for r in m.cache_rules()}
        assert 1 in remaining and 2 not in remaining

    def test_expensive_refetch_outweighs_recency(self):
        """A pricier-to-refetch entry survives a same-rate cheap one."""
        m = manager(capacity=2, policy=EvictionPolicy.COST, cost_tau=10.0)
        m.install(cache_rule(1, penalty=1e-3), now=0.0)   # cheap re-fetch
        m.install(cache_rule(2, penalty=5e-2), now=0.0)   # 50x pricier
        m.install(cache_rule(3), now=1.0)
        remaining = {r.match.field("f1").value for r in m.cache_rules()}
        assert 2 in remaining and 1 not in remaining

    def test_clock_inflation_ages_residents(self):
        """GreedyDual: entries installed after an eviction outrank dead-cold
        residents installed before it, even at equal hit rates."""
        m = manager(capacity=1, policy=EvictionPolicy.COST)
        m.install(cache_rule(1), now=0.0)
        m.install(cache_rule(2), now=1.0)   # evicts 1, raises the clock
        assert m._cost_clock > 0.0
        entry = m._entries[id(m.cache_rules()[0])]
        assert entry.score > m._cost_clock or entry.score == pytest.approx(
            m._cost_clock + m._value(entry)
        )

    def test_penalty_ewma_tracks_stamps(self):
        m = manager(capacity=4, policy=EvictionPolicy.COST)
        m.install(cache_rule(1, penalty=0.01), now=0.0)
        assert m.refetch_penalty_ewma == pytest.approx(0.01)
        m.install(cache_rule(2, penalty=0.05), now=1.0)
        assert 0.01 < m.refetch_penalty_ewma < 0.05


# ---------------------------------------------------------------------------
# Eviction-counter split + set_capacity
# ---------------------------------------------------------------------------

class TestCounterSplit:
    def test_split_and_aggregate(self):
        origin = Rule(Match.any(L), 9, Forward("o"))
        m = manager(capacity=2, default_idle_timeout=1.0)
        m.install(cache_rule(1), now=0.0)
        m.install(cache_rule(2), now=0.0)
        m.install(cache_rule(3), now=0.1)      # capacity eviction
        m.expire(now=50.0)                     # everything idles out
        m.install(cache_rule(4, origin=origin), now=50.0)
        m.invalidate_origin(origin)            # policy-change invalidation
        m.install(cache_rule(5), now=51.0)
        m.flush()                              # flush counts as invalidation
        assert m.evicted_capacity == 1
        assert m.expired == 2
        assert m.invalidated == 2
        assert m.evicted == 5                  # golden-compatible aggregate
        assert m.eviction_breakdown() == {
            "evicted": 1, "expired": 2, "invalidated": 2,
        }

    def test_set_capacity_shrink_evicts_per_policy(self):
        m = manager(capacity=4, policy=EvictionPolicy.LRU)
        rules = [m.install(cache_rule(i), now=float(i)) for i in range(4)]
        evicted = m.set_capacity(2, now=10.0)
        assert [r.match.field("f1").value for r in evicted] == [0, 1]
        assert m.occupancy() == 2
        assert m.capacity == 2
        assert m.evicted_capacity == 2
        assert m.install(cache_rule(9), now=11.0) is not None  # still bounded
        assert m.occupancy() == 2

    def test_set_capacity_grow_is_free(self):
        m = manager(capacity=1)
        m.install(cache_rule(1), now=0.0)
        assert m.set_capacity(8) == []
        assert m.occupancy() == 1
        assert m.evicted == 0

    def test_set_capacity_rejects_negative(self):
        with pytest.raises(ValueError):
            manager().set_capacity(-1)


# ---------------------------------------------------------------------------
# Stable-id invalidation across serialization boundaries
# ---------------------------------------------------------------------------

class TestStableIdInvalidation:
    def test_pickled_policy_rule_still_invalidates(self):
        """A policy rule that crossed a pickle boundary (shard migration,
        control-channel serialization) is a different object with the same
        rule_id — invalidation must still find its cache offspring."""
        origin = Rule(Match.build(L, f1="0000xxxx"), 9, Forward("o"))
        other = Rule(Match.build(L, f2="0000xxxx"), 8, Forward("p"))
        m = manager(capacity=4)
        m.install(cache_rule(1, origin=origin), now=0.0)
        m.install(cache_rule(2, origin=origin), now=0.0)
        m.install(cache_rule(3, origin=other), now=0.0)
        copy = pickle.loads(pickle.dumps(origin))
        assert copy is not origin
        flushed = m.invalidate_origin(copy)
        assert len(flushed) == 2
        assert m.occupancy() == 1
        assert m.invalidated == 2

    def test_same_id_different_rule_does_not_invalidate(self):
        """The fallback is guarded: matching rule_id alone is not enough."""
        origin = Rule(Match.build(L, f1="0000xxxx"), 9, Forward("o"))
        impostor = pickle.loads(pickle.dumps(origin))
        impostor.priority = 1                   # same id, different rule
        m = manager(capacity=4)
        m.install(cache_rule(1, origin=origin), now=0.0)
        assert m.invalidate_origin(impostor) == []
        assert m.occupancy() == 1


# ---------------------------------------------------------------------------
# Dependency-aware install batching (authority side)
# ---------------------------------------------------------------------------

def _chain_policy():
    def rule(priority, action, **fields):
        return Rule(Match.build(L, **fields), priority, action)

    return [
        rule(30, Drop(), f1="0000xxxx", f2="0000xxxx"),
        rule(20, Forward("a"), f1="0000xxxx"),
        rule(10, Forward("b"), f2="0000xxxx"),
        rule(0, Forward("c")),
    ]


class TestInstallBatching:
    def _network(self, prefetch):
        from repro.core import DifaneNetwork
        from repro.net import TopologyBuilder

        topo = TopologyBuilder.linear(2, hosts_per_switch=1)
        return DifaneNetwork.build(
            topo, _chain_policy(), L,
            authority_switches=["s1"], cache_capacity=64,
            redirect_rate=None, prefetch_fragments=prefetch,
        )

    def test_sibling_fragments_travel_in_one_message(self):
        dn = self._network(prefetch=4)
        authority = dn.switch("s1")
        ingress = dn.switch("s0")
        bits = L.pack_values(f1=200, f2=200)   # won by the default rule
        winner = authority.pipeline.authority.table.lookup_bits(bits)
        assert winner is not None
        fragments = authority._cache_rules_for(winner, bits)
        assert len(fragments) > 1              # the default rule shatters
        authority._send_cache_install("s0", winner, bits)
        dn.run()
        # One flow miss, k sibling fragments: k installs counted on both
        # ends, but only ONE batched message crossed the network.
        k = len(fragments)
        assert authority.cache_installs_sent == k
        assert authority.cache_install_batches_sent == 1
        assert ingress.cache_installs_received == k
        assert ingress.cache.occupancy() == k
        # Every fragment carries the measured re-fetch penalty stamp.
        for rule in ingress.cache.cache_rules():
            assert rule.refetch_penalty_s is not None
            assert rule.refetch_penalty_s > 0.0

    def test_single_fragment_keeps_legacy_message(self):
        dn = self._network(prefetch=1)
        authority = dn.switch("s1")
        bits = L.pack_values(f1=200, f2=200)
        winner = authority.pipeline.authority.table.lookup_bits(bits)
        authority._send_cache_install("s0", winner, bits)
        dn.run()
        assert authority.cache_installs_sent == 1
        assert authority.cache_install_batches_sent == 0
        assert dn.switch("s0").cache.occupancy() == 1


# ---------------------------------------------------------------------------
# Controller budget partitioning
# ---------------------------------------------------------------------------

class TestBudgetPartitioning:
    def _network(self):
        from repro.core import DifaneNetwork
        from repro.net import TopologyBuilder
        from repro.flowspace import FIVE_TUPLE_LAYOUT
        from repro.workloads.policies import routing_policy_for_topology

        topo = TopologyBuilder.linear(4, hosts_per_switch=1)
        rules, _ = routing_policy_for_topology(topo, FIVE_TUPLE_LAYOUT)
        return DifaneNetwork.build(
            topo, rules, FIVE_TUPLE_LAYOUT,
            authority_switches=["s1", "s2"], cache_capacity=8,
            redirect_rate=None,
        )

    def test_budgets_follow_load_with_floor(self):
        dn = self._network()
        dn.switch("s0").cache_hits = 90
        dn.switch("s1").cache_hits = 10
        budgets = dn.controller.partition_cache_budgets(total_budget=32)
        assert sum(budgets.values()) == 32
        assert set(budgets) == {"s0", "s1", "s2", "s3"}
        assert all(b >= 1 for b in budgets.values())     # per-switch floor
        assert budgets["s0"] > budgets["s1"] > budgets["s3"]
        # Applied, not just computed:
        for name, budget in budgets.items():
            assert dn.switch(name).cache.capacity == budget
        assert dn.controller.cache_budget_updates == 1

    def test_deterministic_and_conserving(self):
        dn = self._network()
        dn.switch("s0").cache_hits = 7
        dn.switch("s2").redirects_out = 7                # tie with s0
        first = dn.controller.partition_cache_budgets(total_budget=9)
        second = dn.controller.partition_cache_budgets(total_budget=9)
        assert first == second                           # name-ordered ties
        assert sum(first.values()) == 9

    def test_default_budget_is_a_reshuffle(self):
        dn = self._network()
        before = sum(dn.switch(n).cache.capacity
                     for n in dn.network.topology.switches())
        budgets = dn.controller.partition_cache_budgets()
        assert sum(budgets.values()) == before

    def test_shrinking_switch_evicts_down(self):
        dn = self._network()
        victim = dn.switch("s3")
        for i in range(8):
            victim.cache.install(
                Rule(Match.build(victim.layout, nw_proto=i), 5, Forward("x"),
                     kind=RuleKind.CACHE),
                now=0.0,
            )
        dn.switch("s0").cache_hits = 100
        budgets = dn.controller.partition_cache_budgets(total_budget=12)
        assert budgets["s3"] < 8
        assert victim.cache.occupancy() == budgets["s3"]
        assert victim.cache.evicted_capacity == 8 - budgets["s3"]


# ---------------------------------------------------------------------------
# Telemetry exposure (COST-gated probe keys)
# ---------------------------------------------------------------------------

class TestTelemetryExposure:
    def _switch(self, policy):
        from repro.core.authority import DifaneSwitch

        return DifaneSwitch("s", L, cache_capacity=4, eviction=policy)

    def test_cost_probe_exports_churn_split(self):
        switch = self._switch(EvictionPolicy.COST)
        samples = switch._telemetry_probe()
        assert "difane_cache_expirations{switch=s}" in samples
        assert "difane_cache_invalidations{switch=s}" in samples
        assert "difane_cache_refetch_penalty_s{switch=s}" in samples

    def test_default_probe_unchanged(self):
        """Golden safety: LRU runs export exactly the legacy probe keys."""
        switch = self._switch(EvictionPolicy.LRU)
        assert sorted(switch._telemetry_probe()) == [
            "difane_cache_evictions{switch=s}",
            "difane_cache_occupancy{switch=s}",
        ]


# ---------------------------------------------------------------------------
# E8 ablation smoke: the headline claim
# ---------------------------------------------------------------------------

class TestCachingAblation:
    def test_cost_beats_lru_under_flash_crowd(self):
        from repro.experiments.cachingablation import run_caching_ablation

        result = run_caching_ablation(
            workloads=["flash-crowd"], policies=["lru", "cost"],
            capacities=(16,),
        )
        delta = result.notes["cost_minus_lru_miss_rate"]["flash-crowd"]["16"]
        assert delta > 0, f"COST did not beat LRU: delta={delta}"
        labels = {series.label for series in result.series}
        assert labels == {"flash-crowd/lru", "flash-crowd/cost"}

    def test_unknown_names_rejected(self):
        from repro.experiments.cachingablation import run_caching_ablation

        with pytest.raises(ValueError):
            run_caching_ablation(workloads=["nope"])
        with pytest.raises(ValueError):
            run_caching_ablation(policies=["mru"])
