"""Flow-causal analyzer over hand-built trace event sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.flowtrace import MISS_PATHS, STAGES, FlowTraceAnalysis
from repro.obs.trace import TraceEvent, TraceKind


def _event(time, kind, packet_id=1, flow_id=10, node="a1", **extra):
    return TraceEvent(
        time=time, kind=kind, packet_id=packet_id, flow_id=flow_id,
        node=node, **extra,
    )


def _hit_only(packet_id=1, flow_id=10, start=0.0):
    return [
        _event(start, TraceKind.INGRESS, packet_id, flow_id),
        _event(start + 0.001, TraceKind.CACHE_HIT, packet_id, flow_id),
        _event(start + 0.003, TraceKind.DELIVERED, packet_id, flow_id, node="h2"),
    ]


def _miss(packet_id=1, flow_id=10, start=0.0):
    return [
        _event(start, TraceKind.INGRESS, packet_id, flow_id),
        _event(start + 0.001, TraceKind.REDIRECT, packet_id, flow_id),
        _event(start + 0.003, TraceKind.AUTHORITY_HANDLE, packet_id, flow_id,
               node="dist0"),
        _event(start + 0.004, TraceKind.INSTALL_SENT, packet_id, flow_id,
               node="dist0"),
        _event(start + 0.006, TraceKind.DELIVERED, packet_id, flow_id, node="h2"),
    ]


class TestHandBuiltSequences:
    def test_hit_only_flow(self):
        analysis = FlowTraceAnalysis.from_events(_hit_only())
        (span,) = analysis.spans
        assert span.path == "cache-hit"
        assert span.delivered
        assert span.latency == pytest.approx(0.003)
        assert span.stages == {
            "ingress": pytest.approx(0.001),
            "delivery": pytest.approx(0.002),
        }
        assert span.path not in MISS_PATHS
        assert len(analysis.miss_penalty_cdf()) == 0

    def test_miss_install_then_hit(self):
        events = _miss(packet_id=1) + _hit_only(packet_id=2, start=0.01)
        analysis = FlowTraceAnalysis.from_events(events)
        assert len(analysis.spans) == 2
        miss, hit = analysis.spans
        assert miss.path == "redirect"
        assert miss.stages == {
            "ingress": pytest.approx(0.001),
            "redirect": pytest.approx(0.002),
            "authority-handle": pytest.approx(0.001),
            "install": pytest.approx(0.002),
        }
        assert hit.path == "cache-hit"
        # Both packets belong to one flow; the miss is its first span.
        flow = analysis.flows[10]
        assert [s.packet_id for s in flow.spans] == [1, 2]
        assert flow.first is miss
        # The miss-penalty CDF holds exactly that first miss.
        cdf = analysis.miss_penalty_cdf()
        assert cdf.points() == [(pytest.approx(6.0), 1.0)]

    def test_degraded_controller_punt_flow(self):
        events = [
            _event(0.0, TraceKind.INGRESS),
            _event(0.001, TraceKind.DEGRADED),
            _event(0.002, TraceKind.PUNT, node="controller"),
            _event(0.005, TraceKind.DELIVERED, node="h2"),
        ]
        (span,) = FlowTraceAnalysis.from_events(events).spans
        # DEGRADED outranks PUNT in path precedence…
        assert span.path == "degraded"
        assert span.path in MISS_PATHS
        # …but both segments charge to the controller-punt stage.
        assert span.stages == {
            "ingress": pytest.approx(0.001),
            "controller-punt": pytest.approx(0.004),
        }

    def test_dropped_first_packet(self):
        events = [
            _event(0.0, TraceKind.INGRESS),
            _event(0.001, TraceKind.REDIRECT),
            _event(0.002, TraceKind.DROPPED, detail="link-loss"),
        ]
        analysis = FlowTraceAnalysis.from_events(events)
        (span,) = analysis.spans
        assert not span.delivered
        assert span.path == "redirect"
        assert span.latency == pytest.approx(0.002)
        # Undelivered packets never enter the miss-penalty CDF.
        assert len(analysis.miss_penalty_cdf()) == 0

    def test_events_after_terminal_are_clamped(self):
        # An install ack that lands after delivery must not stretch the
        # span or leak time into any stage.
        events = _hit_only() + [
            _event(0.009, TraceKind.INSTALL_RECEIVED),
        ]
        (span,) = FlowTraceAnalysis.from_events(events).spans
        assert span.end == pytest.approx(0.003)
        assert sum(span.stages.values()) == pytest.approx(span.latency)

    def test_unattributed_events_counted_not_folded(self):
        events = _hit_only() + [
            _event(0.002, TraceKind.INSTALL_RECEIVED, packet_id=None),
        ]
        analysis = FlowTraceAnalysis.from_events(events)
        assert analysis.unattributed == 1
        assert len(analysis.spans) == 1

    def test_accepts_jsonl_dict_rows(self):
        rows = [
            {"time": 0.0, "kind": "ingress", "packet_id": 1, "flow_id": 3,
             "node": "a1"},
            {"time": 0.002, "kind": "cache-hit", "packet_id": 1, "flow_id": 3,
             "node": "a1"},
            {"time": 0.004, "kind": "delivered", "packet_id": 1, "flow_id": 3,
             "node": "h2"},
        ]
        (span,) = FlowTraceAnalysis.from_events(rows).spans
        assert span.path == "cache-hit"
        assert span.flow_id == 3

    def test_same_timestamp_ties_break_by_arrival_order(self):
        events = [
            _event(0.0, TraceKind.INGRESS),
            _event(0.0, TraceKind.CACHE_HIT),
            _event(0.001, TraceKind.DELIVERED, node="h2"),
        ]
        (span,) = FlowTraceAnalysis.from_events(events).spans
        assert [e.kind for e in span.events] == [
            TraceKind.INGRESS, TraceKind.CACHE_HIT, TraceKind.DELIVERED,
        ]
        assert span.stages == {"delivery": pytest.approx(0.001)}


class TestAggregates:
    def test_stage_totals_follow_canonical_order(self):
        events = _miss(packet_id=1) + _hit_only(packet_id=2, flow_id=11, start=0.01)
        totals = FlowTraceAnalysis.from_events(events).stage_totals()
        assert list(totals) == [s for s in STAGES if s in totals]
        assert sum(totals.values()) == pytest.approx(0.006 + 0.003)

    def test_top_flows_deterministic_ranking(self):
        events = (
            _miss(packet_id=1, flow_id=10)
            + _hit_only(packet_id=2, flow_id=10, start=0.01)
            + _hit_only(packet_id=3, flow_id=11, start=0.02)
        )
        analysis = FlowTraceAnalysis.from_events(events)
        rows = analysis.top_flows(k=2)
        assert rows[0][:2] == (10, 2)
        assert rows[1][:2] == (11, 1)

    def test_summary_shape(self):
        events = _miss() + _hit_only(packet_id=2, flow_id=11, start=0.01)
        summary = FlowTraceAnalysis.from_events(events).summary()
        assert summary["packets"] == 2
        assert summary["flows"] == 2
        assert summary["paths"] == {"cache-hit": 1, "redirect": 1}
        assert summary["miss_penalty_samples"] == 1
        assert summary["miss_penalty_p50_ms"] == pytest.approx(6.0)


# -- property: the stage decomposition telescopes ---------------------------

_KINDS = [
    TraceKind.INGRESS, TraceKind.CACHE_HIT, TraceKind.AUTHORITY_HIT,
    TraceKind.REDIRECT, TraceKind.FAILOVER, TraceKind.DEGRADED,
    TraceKind.AUTHORITY_HANDLE, TraceKind.PUNT,
    TraceKind.INSTALL_SENT, TraceKind.INSTALL_RECEIVED,
]

_deltas = st.floats(min_value=0.0, max_value=0.01, allow_nan=False)


@st.composite
def _packet_history(draw):
    """INGRESS, a random middle, a terminal, and optional stragglers."""
    kinds = draw(st.lists(st.sampled_from(_KINDS), min_size=0, max_size=6))
    terminal = draw(st.sampled_from([TraceKind.DELIVERED, TraceKind.DROPPED]))
    tail = draw(st.lists(st.sampled_from(_KINDS), min_size=0, max_size=2))
    sequence = [TraceKind.INGRESS] + kinds + [terminal] + tail
    deltas = draw(st.lists(_deltas, min_size=len(sequence), max_size=len(sequence)))
    events, now = [], 0.0
    for kind, delta in zip(sequence, deltas):
        now += delta
        events.append(_event(now, kind))
    return events


@given(_packet_history())
@settings(max_examples=200, deadline=None)
def test_stage_decomposition_sums_to_terminal_latency(events):
    (span,) = FlowTraceAnalysis.from_events(events).spans
    assert sum(span.stages.values()) == pytest.approx(span.latency, abs=1e-12)
    assert all(duration >= 0 for duration in span.stages.values())
    assert span.latency >= 0


@given(st.lists(_packet_history(), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_telescoping_holds_across_many_packets(histories):
    events = []
    for packet_id, history in enumerate(histories, start=1):
        for event in history:
            event.packet_id = packet_id
            event.flow_id = packet_id % 2
        events.extend(history)
    analysis = FlowTraceAnalysis.from_events(events)
    assert len(analysis.spans) == len(histories)
    for span in analysis.spans:
        assert sum(span.stages.values()) == pytest.approx(span.latency, abs=1e-12)
