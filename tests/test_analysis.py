"""Tests for the analysis/reporting helpers."""

import pytest

from repro.analysis import (
    Series,
    cdf,
    format_seconds,
    format_si,
    percentile,
    render_series_table,
    render_table,
    summarize,
)


class TestStats:
    def test_cdf_empty(self):
        assert cdf([]) == []

    def test_cdf_points(self):
        points = cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    def test_cdf_monotone(self):
        points = cdf([5, 1, 4, 1, 3])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)

    def test_percentile(self):
        data = list(range(101))
        assert percentile(data, 50) == pytest.approx(50)
        assert percentile(data, 95) == pytest.approx(95)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestSeries:
    def test_append_and_points(self):
        series = Series("test")
        series.append(1, 10)
        series.append(2, 20)
        assert series.points() == [(1.0, 10.0), (2.0, 20.0)]
        assert len(series) == 2

    def test_y_at(self):
        series = Series("test", x=[1, 2], y=[10, 20])
        assert series.y_at(2) == 20
        assert series.y_at(3) is None


class TestFormatting:
    def test_format_si(self):
        assert format_si(812_345) == "812K"
        assert format_si(1_500_000) == "1.5M"
        assert format_si(2.5e9) == "2.5G"
        assert format_si(42) == "42"

    def test_format_seconds(self):
        assert format_seconds(2.0) == "2s"
        assert format_seconds(4.5e-3) == "4.5ms"
        assert format_seconds(0.4e-3) == "400us"
        assert format_seconds(5e-8) == "50ns"

    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [["xx", 1], ["y", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbb" in lines[2]
        assert len(lines) == 6

    def test_render_series_table_merges_x(self):
        a = Series("A", x=[1, 2], y=[10, 20], x_label="k")
        b = Series("B", x=[2, 3], y=[200, 300])
        text = render_series_table([a, b])
        assert "k" in text
        assert "-" in text  # missing points rendered as dash

    def test_render_series_table_empty(self):
        assert render_series_table([], title="nothing") == "nothing"
