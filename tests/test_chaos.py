"""Chaos layer: lossy links, heartbeat detection, degradation, schedules."""

import dataclasses

import pytest

from repro.core import DifaneNetwork, PartitionInvariantError
from repro.experiments.chaos import attribute_drops, run_chaos_soak
from repro.flowspace import FIVE_TUPLE_LAYOUT, Packet
from repro.net import ChaosSchedule, ChaosSpec, TopologyBuilder
from repro.net.failures import FailureInjector
from repro.openflow.channel import ChannelFaultModel
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def build_star(replication=2, loss=0.0, cache_capacity=0):
    topo = TopologyBuilder.star(4, hosts_per_leaf=1)
    if loss > 0:
        for a, b, data in topo.graph.edges(data=True):
            roles = {topo.graph.nodes[a]["role"], topo.graph.nodes[b]["role"]}
            if roles == {"switch"}:
                data["spec"] = dataclasses.replace(
                    data["spec"], loss_probability=loss
                )
    rules, host_ips = routing_policy_for_topology(topo, L)
    dn = DifaneNetwork.build(
        topo, rules, L,
        authority_switches=["s0", "s1"],
        replication=replication,
        cache_capacity=cache_capacity,
        redirect_rate=None,
        loss_seed=5,
    )
    return dn, topo, host_ips


def packet_to(host_ips, dst, sport):
    return Packet.from_fields(
        L, nw_src=0x0A0A0A0A, nw_dst=host_ips[dst], nw_proto=6,
        tp_src=sport, tp_dst=80,
    )


def host_on(topo, host_ips, switch):
    return next(h for h in host_ips if topo.host_attachment(h) == switch)


class TestInjectorIdempotence:
    def test_double_fail_link_is_a_noop(self):
        dn, topo, _ = build_star()
        injector = FailureInjector(dn.network)
        assert injector.fail_link("hub", "s2") is True
        assert injector.fail_link("hub", "s2") is False
        assert len(injector.events) == 1

    def test_double_restore_link_is_a_noop(self):
        dn, topo, _ = build_star()
        injector = FailureInjector(dn.network)
        injector.fail_link("hub", "s2")
        assert injector.restore_link("hub", "s2") is True
        assert injector.restore_link("hub", "s2") is False
        assert topo.has_link("hub", "s2")

    def test_double_fail_switch_is_a_noop(self):
        dn, topo, _ = build_star()
        injector = FailureInjector(dn.network)
        assert injector.fail_switch("s2") > 0
        assert injector.fail_switch("s2") == 0
        assert injector.failed_switches() == ["s2"]

    def test_double_restore_switch_is_a_noop(self):
        dn, topo, _ = build_star()
        injector = FailureInjector(dn.network)
        links_before = len(topo.links_of("s2"))
        injector.fail_switch("s2")
        assert injector.restore_switch("s2") == links_before
        assert injector.restore_switch("s2") == 0
        assert len(topo.links_of("s2")) == links_before

    def test_restore_preserves_link_spec(self):
        dn, topo, _ = build_star(loss=0.25)
        spec_before = topo.link_spec("hub", "s2")
        injector = FailureInjector(dn.network)
        injector.fail_switch("s2")
        injector.restore_switch("s2")
        assert topo.link_spec("hub", "s2") == spec_before
        assert spec_before.loss_probability == 0.25

    def test_fail_switch_marks_behaviour_dead(self):
        dn, _, _ = build_star()
        injector = FailureInjector(dn.network)
        injector.fail_switch("s2")
        assert dn.switch("s2").alive is False
        injector.restore_switch("s2")
        assert dn.switch("s2").alive is True


class TestLossyLinks:
    def test_total_loss_drops_everything_with_attribution(self):
        dn, topo, host_ips = build_star(loss=1.0, cache_capacity=64)
        src = host_on(topo, host_ips, "s2")
        for sport in range(1200, 1220):
            dn.send(src, packet_to(host_ips, host_on(topo, host_ips, "s3"), sport))
        dn.run()
        drops = dn.network.dropped()
        assert len(dn.network.delivered()) == 0
        assert drops
        assert all(d.drop_reason.startswith("link loss") for d in drops)
        assert attribute_drops(drops) == {"link-loss": len(drops)}

    def test_partial_loss_is_deterministic_in_the_seed(self):
        outcomes = []
        for _ in range(2):
            dn, topo, host_ips = build_star(loss=0.5, cache_capacity=64)
            src = host_on(topo, host_ips, "s2")
            dst = host_on(topo, host_ips, "s3")
            for sport in range(2000, 2080):
                dn.send(src, packet_to(host_ips, dst, sport))
            dn.run()
            outcomes.append(
                [(r.delivered, r.drop_reason) for r in dn.network.deliveries]
            )
        assert outcomes[0] == outcomes[1]
        delivered = sum(1 for ok, _ in outcomes[0] if ok)
        assert 0 < delivered < 80  # p=0.5 per hop: some live, some die

    def test_zero_loss_draws_no_randomness(self):
        dn, topo, _ = build_star(loss=0.0)
        for a, b, _spec in (triple for s in topo.switches()
                            for triple in topo.links_of(s)):
            link = dn.network.link(a, b)
            assert link.loss_probability == 0.0
            assert link.packets_lost == 0


class TestInvariantChecker:
    def test_passes_on_a_healthy_network(self):
        dn, _, _ = build_star()
        assert dn.controller.assert_all_partitions_owned() > 0

    def test_detects_dead_owner(self):
        dn, _, _ = build_star(replication=1)
        FailureInjector(dn.network).fail_switch("s0")
        with pytest.raises(PartitionInvariantError, match="dead"):
            dn.controller.assert_all_partitions_owned()

    def test_passes_again_after_reassignment(self):
        dn, _, _ = build_star(replication=1)
        FailureInjector(dn.network).fail_switch("s0")
        dn.controller.handle_authority_failure("s0")
        assert dn.controller.assert_all_partitions_owned() > 0

    def test_restore_after_reassignment_keeps_invariants(self):
        # The partition moved to s1 while s0 was down; bringing s0 back
        # (and reinstating it) must not corrupt ownership.
        dn, topo, host_ips = build_star(replication=1)
        injector = FailureInjector(dn.network)
        injector.fail_switch("s0")
        dn.controller.handle_authority_failure("s0")
        injector.restore_switch("s0")
        dn.controller.reinstate_authority("s0")
        assert "s0" in dn.controller.authority_switches
        assert dn.controller.assert_all_partitions_owned() > 0
        src = host_on(topo, host_ips, "s2")
        dst = host_on(topo, host_ips, "s3")
        for sport in range(3000, 3010):
            dn.send(src, packet_to(host_ips, dst, sport))
        dn.run()
        assert len(dn.network.delivered()) == 10


class TestHeartbeatDetection:
    def test_detection_latency_tracks_threshold_times_interval(self):
        dn, _, _ = build_star()
        interval, threshold = 0.02, 3
        dn.controller.connect_control_plane(
            heartbeat_interval_s=interval, miss_threshold=threshold,
        )
        injector = FailureInjector(dn.network)
        injector.fail_switch_at(0.2, "s0")
        dn.run(until=0.6)
        monitor = dn.controller.monitor
        assert [s for _, s in monitor.detections] == ["s0"]
        latency = monitor.detections[0][0] - 0.2
        # At least the deadline minus one beat of phase; at most deadline
        # plus a check period plus channel latency.
        assert threshold * interval - interval <= latency
        assert latency <= threshold * interval + interval + 0.01
        assert monitor.false_positives == 0

    def test_no_false_positives_under_bounded_delay(self):
        # Channel jitter up to one beat period: arrival gaps stay well
        # under the 3-interval deadline, so nothing may be declared dead.
        dn, _, _ = build_star()
        fm = ChannelFaultModel(extra_delay_s=0.02, seed=3)
        dn.controller.connect_control_plane(
            fault_model=fm, heartbeat_interval_s=0.02, miss_threshold=3,
        )
        dn.run(until=1.0)
        assert dn.controller.monitor.detections == []
        assert dn.controller.monitor.false_positives == 0

    def test_recovery_reinstates_the_authority(self):
        dn, _, _ = build_star()
        dn.controller.connect_control_plane(
            heartbeat_interval_s=0.02, miss_threshold=3,
        )
        injector = FailureInjector(dn.network)
        injector.fail_switch_at(0.2, "s0")
        injector.restore_switch_at(0.4, "s0")
        dn.run(until=0.8)
        monitor = dn.controller.monitor
        assert [s for _, s in monitor.detections] == ["s0"]
        assert [s for _, s in monitor.recoveries] == ["s0"]
        assert "s0" in dn.controller.authority_switches
        assert dn.controller.assert_all_partitions_owned() > 0


class TestGracefulDegradation:
    def kill_both_authorities(self, dn):
        injector = FailureInjector(dn.network)
        injector.fail_switch("s0")
        injector.fail_switch("s1")
        return injector

    def test_orphaned_partition_falls_back_to_controller(self):
        dn, topo, host_ips = build_star()
        dn.controller.connect_control_plane(max_retries=None)
        src = host_on(topo, host_ips, "s2")
        dst = host_on(topo, host_ips, "s3")
        self.kill_both_authorities(dn)
        for sport in range(4000, 4010):
            dn.send(src, packet_to(host_ips, dst, sport))
        dn.run()
        assert len(dn.network.delivered()) == 10
        assert sum(s.degraded_packets for s in dn.switches()) == 10
        assert dn.controller.degraded_packet_ins == 10
        assert all(r.via_controller for r in dn.network.delivered())

    def test_without_control_channel_orphans_drop_attributed(self):
        dn, topo, host_ips = build_star()
        src = host_on(topo, host_ips, "s2")
        dst = host_on(topo, host_ips, "s3")
        self.kill_both_authorities(dn)
        dn.send(src, packet_to(host_ips, dst, 4100))
        dn.run()
        drops = dn.network.dropped()
        assert len(drops) == 1
        assert drops[0].drop_reason == "authority unreachable"
        assert attribute_drops(drops) == {"black-hole": 1}


class TestChaosSchedule:
    def make(self, seed=9):
        dn, topo, _ = build_star()
        injector = FailureInjector(dn.network)
        fm = ChannelFaultModel(seed=seed)
        spec = ChaosSpec(seed=seed, duration_s=1.0)
        return ChaosSchedule.randomized(
            dn.network, injector, spec,
            kill_candidates=["s2", "s3"],
            authority_candidates=["s0", "s1"],
            fault_model=fm,
        )

    def test_same_seed_same_plan(self):
        assert self.make(seed=9).planned == self.make(seed=9).planned

    def test_different_seed_different_plan(self):
        assert self.make(seed=9).planned != self.make(seed=10).planned

    def test_all_events_inside_the_run_window(self):
        schedule = self.make()
        assert schedule.planned
        for time, _, _ in schedule.planned:
            assert 0.0 < time < 1.0

    def test_brownout_requires_fault_model(self):
        dn, _, _ = build_star()
        schedule = ChaosSchedule(dn.network, FailureInjector(dn.network))
        with pytest.raises(ValueError):
            schedule.brownout(0.1, 0.5, 0.2)


class TestChaosSoak:
    def test_soak_holds_the_robustness_targets(self):
        result = run_chaos_soak(rate=1500, duration=0.4)
        notes = result.notes
        assert notes["invariant_violations"] == 0
        assert notes["unattributed_drops"] == 0
        assert notes["unaccounted_packets"] == 0
        assert notes["detections"] >= 1  # the authority kill was noticed
        assert notes["delivered"] > 0.5 * 1500 * 0.4

    def test_soak_is_deterministic(self):
        a = run_chaos_soak(rate=800, duration=0.3, seed=21)
        b = run_chaos_soak(rate=800, duration=0.3, seed=21)
        assert a.table_rows == b.table_rows
        assert a.notes["drop_attribution"] == b.notes["drop_attribution"]
        assert a.notes["detection_latencies_s"] == b.notes["detection_latencies_s"]


class TestKillRecoverKillRegression:
    """A dead authority's fragments cannot be uninstalled in place; the
    reinstate path must purge them so a kill→recover→kill cycle never
    double-counts the switch's rules or load."""

    def expected_occupancy(self, dn):
        installed = {}
        for state in dn.controller._states.values():
            for owner, fragments in state.installed.items():
                installed[owner] = installed.get(owner, 0) + len(fragments)
        return installed

    def test_reinstate_purges_stale_fragments(self):
        dn, _, _ = build_star(replication=1)
        injector = FailureInjector(dn.network)
        injector.fail_switch("s0")
        dn.controller.handle_authority_failure("s0")
        # Dead switch: the re-homed partition's fragments linger in its TCAM.
        assert dn.tcam_report()["s0"]["authority"] > 0
        injector.restore_switch("s0")
        dn.controller.reinstate_authority("s0")
        report = dn.tcam_report()
        assert report["s0"]["authority"] == 0
        expected = self.expected_occupancy(dn)
        for name, counts in report.items():
            assert counts["authority"] == expected.get(name, 0)

    def test_kill_recover_kill_cycle_stays_consistent(self):
        dn, _, _ = build_star(replication=1)
        injector = FailureInjector(dn.network)
        for _ in range(2):
            injector.fail_switch("s0")
            dn.controller.handle_authority_failure("s0")
            injector.restore_switch("s0")
            dn.controller.reinstate_authority("s0")
        # The candidate pool holds each authority exactly once...
        pool = dn.controller.authority_switches
        assert sorted(pool) == sorted(set(pool))
        # ...ownership is whole, and every switch's physical TCAM matches
        # the controller's installed records (no stale double-counting).
        assert dn.controller.assert_all_partitions_owned() > 0
        expected = self.expected_occupancy(dn)
        for name, counts in dn.tcam_report().items():
            assert counts["authority"] == expected.get(name, 0)

    def test_heartbeat_flap_does_not_duplicate_candidates(self):
        dn, _, _ = build_star(replication=1)
        dn.controller.connect_control_plane(
            heartbeat_interval_s=0.02, miss_threshold=3,
        )
        injector = FailureInjector(dn.network)
        # Two full kill→detect→recover→reinstate rounds through the monitor.
        injector.fail_switch_at(0.1, "s0")
        injector.restore_switch_at(0.4, "s0")
        injector.fail_switch_at(0.7, "s0")
        injector.restore_switch_at(1.0, "s0")
        dn.run(until=1.5)
        monitor = dn.controller.monitor
        assert [s for _, s in monitor.detections] == ["s0", "s0"]
        assert [s for _, s in monitor.recoveries] == ["s0", "s0"]
        pool = dn.controller.authority_switches
        assert sorted(pool) == sorted(set(pool))
        assert pool.count("s0") == 1
        assert dn.controller.assert_all_partitions_owned() > 0
        expected = self.expected_occupancy(dn)
        for name, counts in dn.tcam_report().items():
            assert counts["authority"] == expected.get(name, 0)


class TestShardKillChaos:
    def test_kill_shard_requires_a_plane(self):
        dn, _, _ = build_star()
        schedule = ChaosSchedule(dn.network, FailureInjector(dn.network))
        with pytest.raises(ValueError):
            schedule.kill_shard(0.1, "shard0")

    def test_shard_kills_extend_the_plan_without_perturbing_legacy_draws(self):
        from repro.core.shards import attach_sharded_control_plane

        def plan(shard_kills):
            dn, _, _ = build_star()
            plane = attach_sharded_control_plane(
                dn.controller, n_shards=2, seed=4, rebalance=False,
            )
            injector = FailureInjector(dn.network)
            spec = ChaosSpec(seed=9, duration_s=1.0, shard_kills=shard_kills)
            return ChaosSchedule.randomized(
                dn.network, injector, spec,
                kill_candidates=["s2", "s3"],
                authority_candidates=["s0", "s1"],
                fault_model=ChannelFaultModel(seed=9),
                shard_plane=plane,
                shard_candidates=sorted(plane.shards),
            ).planned

        baseline = plan(shard_kills=0)
        extended = plan(shard_kills=1)
        # Shard-kill draws come after every legacy draw, so the legacy
        # events of the plan are byte-identical (the combined plan is
        # time-sorted, so filter rather than prefix-compare).
        shard_kinds = {"kill-shard", "repair-shard"}
        legacy = [e for e in extended if e[1] not in shard_kinds]
        assert legacy == baseline
        extra = [e for e in extended if e[1] in shard_kinds]
        assert extra

    def test_scheduled_shard_kill_triggers_takeover(self):
        from repro.core.shards import attach_sharded_control_plane

        dn, _, _ = build_star()
        plane = attach_sharded_control_plane(
            dn.controller, n_shards=2, seed=4, lease_interval_s=0.02,
            rebalance=False,
        )
        injector = FailureInjector(dn.network)
        schedule = ChaosSchedule(
            dn.network, injector, shard_plane=plane,
        )
        schedule.kill_shard(0.1, "shard0", repair_at=0.5)
        dn.run(until=1.0)
        events = [e["event"] for e in plane.events]
        assert "shard-kill" in events
        assert "election" in events  # the surviving shard took the lease
        assert plane.term >= 1
        assert plane.leader_name == "shard1" or plane.shards["shard0"].alive
        # Every partition is owned by a live shard at the end.
        for pid, owner in sorted(plane.ownership.items()):
            assert plane.shards[owner].alive
