"""Unit tests for the event scheduler and service stations."""

import pytest

from repro.net import EventScheduler, ServiceStation


class TestScheduler:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(0.3, fired.append, "c")
        sched.schedule(0.1, fired.append, "a")
        sched.schedule(0.2, fired.append, "b")
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        sched = EventScheduler()
        fired = []
        for name in "abc":
            sched.schedule(1.0, fired.append, name)
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(0.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [0.5]
        assert sched.now == 0.5

    def test_run_until_stops_early(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, "early")
        sched.schedule(5.0, fired.append, "late")
        sched.run(until=2.0)
        assert fired == ["early"]
        assert sched.now == 2.0  # clock advances to the horizon
        sched.run()
        assert fired == ["early", "late"]

    def test_cancel(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, fired.append, "x")
        handle.cancel()
        sched.run()
        assert fired == []
        assert sched.pending() == 0

    def test_schedule_during_run(self):
        sched = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sched.schedule(0.1, chain, n + 1)

        sched.schedule(0.0, chain, 0)
        sched.run()
        assert fired == [0, 1, 2, 3]

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.schedule_at(0.5, lambda: None)

    def test_max_events_guard(self):
        sched = EventScheduler()

        def forever():
            sched.schedule(0.1, forever)

        sched.schedule(0.0, forever)
        fired = sched.run(max_events=10)
        assert fired == 10


class TestServiceStation:
    def test_serves_at_rate(self):
        sched = EventScheduler()
        done = []
        station = ServiceStation(sched, rate=10.0, on_complete=lambda i: done.append(sched.now))
        for _ in range(3):
            station.submit("job")
        sched.run()
        assert done == pytest.approx([0.1, 0.2, 0.3])
        assert station.completed == 3

    def test_queue_limit_drops(self):
        sched = EventScheduler()
        dropped = []
        station = ServiceStation(
            sched, rate=1.0, on_complete=lambda i: None,
            queue_limit=2, on_drop=dropped.append,
        )
        accepted = [station.submit(i) for i in range(5)]
        # First job goes straight into service; 2 queue; rest drop.
        assert accepted == [True, True, True, False, False]
        assert dropped == [3, 4]
        sched.run()
        assert station.completed == 3
        assert station.dropped == 2

    def test_arrivals_during_service(self):
        sched = EventScheduler()
        done = []
        station = ServiceStation(sched, rate=2.0, on_complete=done.append)
        sched.schedule(0.0, station.submit, "a")
        sched.schedule(0.1, station.submit, "b")
        sched.run()
        assert done == ["a", "b"]
        assert sched.now == pytest.approx(1.0)

    def test_utilization(self):
        sched = EventScheduler()
        station = ServiceStation(sched, rate=10.0, on_complete=lambda i: None)
        station.submit("x")
        sched.run()
        assert station.utilization(1.0) == pytest.approx(0.1)
        assert station.utilization(0.0) == 0.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ServiceStation(EventScheduler(), rate=0.0, on_complete=lambda i: None)

    def test_saturation_throughput_equals_rate(self):
        """Offered load 2× capacity: completions track the service rate."""
        sched = EventScheduler()
        done = []
        station = ServiceStation(
            sched, rate=100.0, on_complete=lambda i: done.append(sched.now),
            queue_limit=5,
        )
        # Offer 200/s for 1 simulated second.
        for i in range(200):
            sched.schedule(i / 200.0, station.submit, i)
        sched.run()
        span = done[-1] - done[0]
        measured_rate = (len(done) - 1) / span
        assert measured_rate == pytest.approx(100.0, rel=0.05)
        assert station.dropped > 0
