"""Columnar packet core: equivalence with the scalar oracle, plus units.

The contract under test (DESIGN.md, "Columnar core"): with the columnar
batch path enabled, a run must produce the *same metrics document*, the
same per-flow delivery outcomes and the same trace accounting as the
scalar per-packet oracle — the only permitted difference is speed.  The
property below drives randomized star fabrics and Zipf burst workloads
through both paths, including a lossy-fabric configuration (where the
columnar path must degrade to the oracle, because per-link RNG draws are
consumed in processing order).
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core.controller import DifaneNetwork
from repro.flowspace.batch import PacketBatch, layout_vectorizes, set_columnar
from repro.flowspace.bits import mask_of_width
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.net.events import EventScheduler
from repro.net.topology import TopologyBuilder
from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.switch.tcam import Tcam
from repro.workloads.batches import TimedBatch, host_pair_batches
from repro.workloads.classbench import generate_classbench
from repro.workloads.policies import routing_policy_for_topology

LAYOUT = FIVE_TUPLE_LAYOUT


@pytest.fixture(autouse=True)
def _scalar_mode_after():
    """Every test leaves the process in scalar mode with its old context."""
    previous = obs_context.current()
    yield
    set_columnar(False)
    obs_context.install(previous)


# -- the equivalence property -------------------------------------------------------

def _run_workload(columnar, seed, leaf_count, hosts_per_leaf, hot_flows,
                  redirect_rate=None, loss=0.0):
    """One full DIFANE run; returns (metrics snapshot, outcomes, trace)."""
    set_columnar(columnar)
    context = fresh_run_context(trace=True, telemetry=True)
    topo = TopologyBuilder.star(leaf_count=leaf_count, hosts_per_leaf=hosts_per_leaf)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT, seed=seed)
    facade = DifaneNetwork.build(
        topo, rules, LAYOUT, authority_count=2, cache_capacity=64,
        redirect_rate=redirect_rate,
    )
    if loss:
        for link in facade.network._links.values():
            link.loss_probability = loss
    schedule = host_pair_batches(
        topo, host_ips, LAYOUT, bursts=4, burst_size=40,
        hot_flows=hot_flows, alpha=1.0, seed=seed,
    )
    for timed in schedule:
        facade.send_batch_at(timed.time, timed.switch, timed.batch)
    facade.run()
    outcomes = sorted(
        (r.flow_id, r.delivered, r.via_authority, r.via_controller, r.drop_reason)
        for r in facade.network.deliveries
    )
    # artifact_cache_* counters describe the harness, not the simulated
    # system (the zipf CDF is built once per process, so the first run
    # counts a build and the second a memory hit) — excluded exactly like
    # the canonical metrics document excludes them.
    snapshot = context.metrics.snapshot(exclude_prefixes=("artifact_cache_",))
    return snapshot, outcomes, context.tracer.accounting()


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    leaf_count=st.integers(min_value=3, max_value=6),
    hosts_per_leaf=st.integers(min_value=1, max_value=2),
    hot_flows=st.integers(min_value=4, max_value=24),
    config=st.sampled_from([
        {},                              # clean fabric: the fast path engages
        {"redirect_rate": 800_000.0},    # redirect stations queue per packet
        {"loss": 0.02},                  # faulty fabric: must degrade to oracle
    ]),
)
def test_columnar_equals_scalar(seed, leaf_count, hosts_per_leaf, hot_flows, config):
    scalar = _run_workload(
        False, seed, leaf_count, hosts_per_leaf, hot_flows, **config
    )
    columnar = _run_workload(
        True, seed, leaf_count, hosts_per_leaf, hot_flows, **config
    )
    for name, expected, actual in zip(
        ("metrics snapshot", "delivery outcomes", "trace accounting"),
        scalar, columnar,
    ):
        assert expected == actual, f"{name} diverged under {config or 'clean fabric'}"


# -- PacketBatch --------------------------------------------------------------------

def _sample_batch(count=16, seed=3):
    rng = np.random.default_rng(seed)
    return PacketBatch.from_fields(
        LAYOUT,
        count,
        flow_ids=rng.integers(0, 64, count).tolist(),
        size_bytes=64,
        nw_src=rng.integers(0, 2**32, count),
        nw_dst=rng.integers(0, 2**32, count),
        nw_proto=6,
        tp_src=rng.integers(1024, 65536, count),
        tp_dst=80,
    )


def test_packet_batch_round_trips_through_packets():
    assert layout_vectorizes(LAYOUT)
    batch = _sample_batch()
    packets = batch.packets()
    assert [p.header_bits for p in packets] == batch.header_bits_list()
    assert [p.flow_id for p in packets] == batch.flow_ids.tolist()
    assert [p.packet_id for p in packets] == batch.packet_ids.tolist()
    rebatched = PacketBatch.from_packets(packets)
    assert rebatched.header_bits_list() == batch.header_bits_list()
    assert rebatched.packet_ids.tolist() == batch.packet_ids.tolist()


def test_packet_batch_select_and_set_field():
    batch = _sample_batch()
    bits = batch.header_bits_list()
    sub = batch.select([1, 5, 9])
    assert len(sub) == 3
    assert sub.header_bits_list() == [bits[1], bits[5], bits[9]]
    assert sub.packet_ids.tolist() == batch.packet_ids[[1, 5, 9]].tolist()
    sub.set_field("tp_dst", 443)
    offset = LAYOUT.offset("tp_dst")
    for packet_bits in sub.header_bits_list():
        assert (packet_bits >> offset) & mask_of_width(16) == 443
    # select copies: the parent batch is untouched
    assert batch.header_bits_list() == bits


def test_packet_batch_encapsulate_decapsulate():
    batch = _sample_batch(count=4)
    assert batch.encap_destination is None
    batch.encapsulate("a1")
    assert batch.encap_destination == "a1"
    for packet in batch.packets():
        assert packet.encap_destination == "a1"
    batch.decapsulate()
    assert batch.encap_destination is None


# -- the vector matcher -------------------------------------------------------------

def test_match_batch_agrees_with_scalar_lookup():
    """Tcam.match_batch (VectorMatcher) wins exactly where lookup does."""
    rules = generate_classbench("acl", count=200, seed=11, layout=LAYOUT)
    tcam = Tcam(LAYOUT)
    for rule in rules:
        tcam.install(rule)
    rng = random.Random(14)
    probe_bits = [rule.match.ternary.sample(rng) for rule in rules[:64]]
    probe_bits += [rng.getrandbits(LAYOUT.width - 1) for _ in range(64)]
    fields = {
        name: [(bits >> LAYOUT.offset(name)) & mask_of_width(spec.width)
               for bits in probe_bits]
        for name, spec in ((f.name, f) for f in LAYOUT.fields)
    }
    batch = PacketBatch.from_fields(LAYOUT, len(probe_bits), **fields)
    winners, ordered = tcam.match_batch(batch)
    for position, bits in enumerate(batch.header_bits_list()):
        expected = tcam.table.lookup_bits(bits)
        actual = None if winners[position] < 0 else ordered[winners[position]]
        assert actual is expected


# -- burst-granular scheduling ------------------------------------------------------

def test_schedule_batch_is_counted_and_marked():
    scheduler = EventScheduler()
    fired = []
    event = scheduler.schedule_batch(0.5, fired.append, "burst")
    assert event.kind == "batch"
    assert scheduler.batch_events_scheduled == 1
    scheduler.run()
    assert fired == ["burst"]


def test_timed_batch_compat_view():
    topo = TopologyBuilder.star(leaf_count=3, hosts_per_leaf=2)
    _, host_ips = routing_policy_for_topology(topo, LAYOUT)
    schedule = host_pair_batches(
        topo, host_ips, LAYOUT, bursts=2, burst_size=10, hot_flows=4, seed=5,
    )
    assert sum(len(timed) for timed in schedule) == 20
    for timed in schedule:
        assert isinstance(timed, TimedBatch)
        scalars = timed.timed_packets()
        assert len(scalars) == len(timed)
        for scalar, bits in zip(scalars, timed.batch.header_bits_list()):
            assert scalar.time == timed.time
            assert scalar.source_host == timed.switch
            assert scalar.packet.header_bits == bits


def test_fabric_is_clean_gates_the_fast_path():
    """A lossy link forces the scalar path even with columnar mode on."""
    set_columnar(True)
    fresh_run_context()
    topo = TopologyBuilder.star(leaf_count=3, hosts_per_leaf=2)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    facade = DifaneNetwork.build(
        topo, rules, LAYOUT, authority_count=1, cache_capacity=64,
    )
    assert facade.network.fabric_is_clean()
    next(iter(facade.network._links.values())).loss_probability = 0.5
    assert not facade.network.fabric_is_clean()
    schedule = host_pair_batches(
        topo, host_ips, LAYOUT, bursts=1, burst_size=20, hot_flows=4, seed=2,
    )
    for timed in schedule:
        facade.send_batch_at(timed.time, timed.switch, timed.batch)
    facade.run()
    assert facade.network.scheduler.batch_events_scheduled == 0


def test_clean_fabric_uses_batch_events():
    set_columnar(True)
    fresh_run_context()
    topo = TopologyBuilder.star(leaf_count=3, hosts_per_leaf=2)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    facade = DifaneNetwork.build(
        topo, rules, LAYOUT, authority_count=1, cache_capacity=64,
    )
    schedule = host_pair_batches(
        topo, host_ips, LAYOUT, bursts=1, burst_size=20, hot_flows=4, seed=2,
    )
    for timed in schedule:
        facade.send_batch_at(timed.time, timed.switch, timed.batch)
    facade.run()
    assert facade.network.scheduler.batch_events_scheduled > 0


# -- CLI: corrupt metrics documents exit 2 with a clean message ---------------------

def test_cli_report_missing_file_exits_2(capsys):
    assert cli_main(["report", "/nonexistent/metrics.json"]) == 2
    err = capsys.readouterr().err
    assert "cannot read metrics document" in err
    assert "Traceback" not in err


def test_cli_report_invalid_json_exits_2(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    assert cli_main(["report", str(path)]) == 2
    err = capsys.readouterr().err
    assert "not valid JSON" in err or "invalid" in err.lower()
    assert "Traceback" not in err


def test_cli_obs_diff_wrong_schema_exits_2(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"schema": "difane-metrics/1", "counters": {}}))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "something-else/9"}))
    assert cli_main(["obs", "diff", str(good), str(bad)]) == 2
    err = capsys.readouterr().err
    assert "schema" in err
    assert "Traceback" not in err
