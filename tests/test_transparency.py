"""Transparency: DIFANE must report the same per-policy-rule statistics
the operator would see from one giant switch.

This is the counter-aggregation path (cache fragments + authority
fragments folded back through their origin chains) validated against a
per-packet oracle count.
"""

import random

import pytest

from repro.core import DifaneNetwork
from repro.flowspace import FIVE_TUPLE_LAYOUT, Packet, RuleTable
from repro.net import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.traffic import host_pair_packets

L = FIVE_TUPLE_LAYOUT


def build(prefetch=1, replication=1):
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=2, access_per_distribution=2,
        hosts_per_access=2,
    )
    rules, host_ips = routing_policy_for_topology(topo, L, acl_rules=8)
    dn = DifaneNetwork.build(
        topo, rules, L, authority_count=2, cache_capacity=256,
        redirect_rate=None, replication=replication,
        prefetch_fragments=prefetch,
    )
    return dn, topo, host_ips, rules


def pump(dn, topo, host_ips, flows=150, seed=9):
    packets = []
    for timed in host_pair_packets(
        topo, host_ips, L, count=flows, rate=3000.0, seed=seed, flow_packets=2
    ):
        packets.append(timed.packet.header_bits)
        dn.send_at(timed.time, timed.source_host, timed.packet)
    dn.run()
    return packets


class TestCounterTransparency:
    def test_counts_match_oracle(self):
        dn, topo, host_ips, rules = build()
        header_stream = pump(dn, topo, host_ips)
        oracle = RuleTable(L, rules)
        expected = {}
        for bits in header_stream:
            winner = oracle.lookup_bits(bits)
            expected[winner] = expected.get(winner, 0) + 1
        measured = dn.policy_counters()
        for rule, count in expected.items():
            snapshot = measured.get(rule)
            assert snapshot is not None, f"no counters folded for {rule}"
            assert snapshot.packets == count, (
                f"{rule}: measured {snapshot.packets}, oracle {count}"
            )

    def test_total_packets_conserved(self):
        dn, topo, host_ips, rules = build()
        header_stream = pump(dn, topo, host_ips)
        measured = dn.policy_counters()
        assert sum(s.packets for s in measured.values()) == len(header_stream)

    def test_counts_survive_replication(self):
        """Backup authority fragments carry zero traffic, so replication
        must not double-count."""
        dn, topo, host_ips, rules = build(replication=2)
        header_stream = pump(dn, topo, host_ips)
        measured = dn.policy_counters()
        assert sum(s.packets for s in measured.values()) == len(header_stream)

    def test_fragments_tracked(self):
        dn, topo, host_ips, rules = build()
        pump(dn, topo, host_ips)
        measured = dn.policy_counters()
        # Every policy rule with traffic shows at least one fragment.
        assert all(s.fragments >= 1 for s in measured.values())


class TestPrefetch:
    def test_prefetch_installs_more_fragments(self):
        baseline, topo_b, ips_b, _ = build(prefetch=1)
        pump(baseline, topo_b, ips_b, flows=60, seed=11)
        eager, topo_e, ips_e, _ = build(prefetch=4)
        pump(eager, topo_e, ips_e, flows=60, seed=11)
        installs_baseline = sum(s.cache_installs_sent for s in baseline.switches())
        installs_eager = sum(s.cache_installs_sent for s in eager.switches())
        assert installs_eager >= installs_baseline

    def test_prefetch_preserves_semantics(self):
        dn, topo, host_ips, rules = build(prefetch=4)
        pump(dn, topo, host_ips, flows=100, seed=12)
        oracle = RuleTable(L, rules)
        rng = random.Random(0)
        # Replay fresh packets: outcome must match the oracle verdict.
        hosts = sorted(host_ips)
        for _ in range(80):
            src, dst = rng.sample(hosts, 2)
            fields = dict(
                nw_src=host_ips[src], nw_dst=host_ips[dst], nw_proto=6,
                tp_src=rng.randint(1024, 65535),
                tp_dst=rng.choice([80, 22, 445]),
            )
            packet = Packet.from_fields(L, **fields)
            expected = oracle.lookup(Packet.from_fields(L, **fields))
            dn.send(src, packet)
            dn.run()
            record = dn.network.deliveries[-1]
            if expected.actions.is_drop:
                assert not record.delivered
            else:
                assert record.delivered
                assert record.endpoint == expected.actions.final_forward().port

    def test_prefetch_validation(self):
        from repro.core.authority import DifaneSwitch
        with pytest.raises(ValueError):
            DifaneSwitch("s", L, prefetch_fragments=0)


class TestNoxFlowExpiry:
    def test_idle_timeout_expires_microflows(self):
        from repro.baselines import NoxNetwork
        topo = TopologyBuilder.linear(2, hosts_per_switch=1)
        rules, host_ips = routing_policy_for_topology(topo, L)
        nn = NoxNetwork.build(topo, rules, L)
        nn.controller.microflow_idle_timeout = 0.5
        packet = Packet.from_fields(
            L, nw_dst=host_ips["h1"], nw_proto=6, tp_src=999, tp_dst=80
        )
        nn.send("h0", packet)
        nn.run()
        switch = nn.switch("s0")
        assert len(switch.flow_table) == 1
        assert switch.expire_flows(now=nn.network.scheduler.now + 1.0) == 1
        assert len(switch.flow_table) == 0
