"""Unit tests for the capacity-bounded TCAM."""

import pytest

from repro.flowspace import Forward, Match, Packet, Rule, TWO_FIELD_LAYOUT
from repro.flowspace.rule import RuleKind
from repro.switch import Tcam, TcamFullError

L = TWO_FIELD_LAYOUT


def rule(priority=1, kind=RuleKind.POLICY, **fields):
    return Rule(Match.build(L, **fields), priority, Forward("x"), kind=kind)


class TestCapacity:
    def test_unbounded(self):
        tcam = Tcam(L, capacity=None)
        for i in range(100):
            tcam.install(rule())
        assert tcam.occupancy == 100
        assert not tcam.is_full()

    def test_bounded_install_and_reject(self):
        tcam = Tcam(L, capacity=2)
        tcam.install(rule())
        tcam.install(rule())
        assert tcam.is_full()
        with pytest.raises(TcamFullError):
            tcam.install(rule())
        assert tcam.rejected == 1

    def test_make_room_eviction(self):
        tcam = Tcam(L, capacity=1)
        first = tcam.install(rule())
        second = rule()
        tcam.install(second, make_room=lambda: first)
        assert tcam.occupancy == 1
        assert tcam.rules() == [second]
        assert tcam.evictions == 1

    def test_make_room_gives_up(self):
        tcam = Tcam(L, capacity=1)
        tcam.install(rule())
        with pytest.raises(TcamFullError):
            tcam.install(rule(), make_room=lambda: None)

    def test_high_water(self):
        tcam = Tcam(L, capacity=10)
        installed = [tcam.install(rule()) for _ in range(5)]
        for r in installed:
            tcam.evict(r)
        assert tcam.high_water == 5
        assert tcam.occupancy == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tcam(L, capacity=-1)

    def test_zero_capacity(self):
        tcam = Tcam(L, capacity=0)
        assert tcam.is_full()
        with pytest.raises(TcamFullError):
            tcam.install(rule())


class TestLookup:
    def test_lookup_hits_and_counts(self):
        tcam = Tcam(L)
        r = tcam.install(rule(priority=5, f1=1), now=0.0)
        packet = Packet.from_fields(L, f1=1)
        winner = tcam.lookup(packet, now=2.0)
        assert winner is r
        assert tcam.hits == 1
        assert r.packet_count == 1
        assert r.last_hit_at == 2.0

    def test_peek_does_not_count(self):
        tcam = Tcam(L)
        r = tcam.install(rule(f1=1))
        assert tcam.peek(Packet.from_fields(L, f1=1)) is r
        assert tcam.hits == 0
        assert r.packet_count == 0

    def test_miss(self):
        tcam = Tcam(L)
        tcam.install(rule(f1=1))
        assert tcam.lookup(Packet.from_fields(L, f1=2)) is None
        assert tcam.lookups == 1
        assert tcam.hits == 0


class TestEviction:
    def test_evict_if(self):
        tcam = Tcam(L)
        keep = tcam.install(rule(priority=1))
        drop = tcam.install(rule(priority=2))
        removed = tcam.evict_if(lambda r: r.priority == 2)
        assert removed == [drop]
        assert tcam.rules() == [keep]

    def test_evict_expired(self):
        tcam = Tcam(L)
        stale = rule()
        stale.idle_timeout = 1.0
        tcam.install(stale, now=0.0)
        fresh = rule()
        tcam.install(fresh, now=0.0)
        removed = tcam.evict_expired(now=5.0)
        assert removed == [stale]
        assert fresh in tcam.rules()

    def test_clear_counts_evictions(self):
        tcam = Tcam(L)
        for _ in range(3):
            tcam.install(rule())
        tcam.clear()
        assert tcam.occupancy == 0
        assert tcam.evictions == 3

    def test_rules_filter_by_kind(self):
        tcam = Tcam(L)
        cache = tcam.install(rule(kind=RuleKind.CACHE))
        auth = tcam.install(rule(kind=RuleKind.AUTHORITY))
        assert tcam.rules(RuleKind.CACHE) == [cache]
        assert tcam.rules(RuleKind.AUTHORITY) == [auth]
        assert set(tcam.rules()) == {cache, auth}
