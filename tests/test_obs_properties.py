"""Property tests for the observability layer (hypothesis).

Three families of properties:

* the registry merge is **associative and commutative** — any grouping
  or ordering of per-run registries folds to the same snapshot;
* histogram **quantiles are bounded by their samples** for every q;
* trace-event accounting **reconciles exactly** with SimNetwork's
  delivered/dropped/degraded totals under randomized chaos schedules —
  the tracer is an oracle, not an approximation.
"""

from __future__ import annotations

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.controller import DifaneNetwork
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.net.chaos import ChaosSchedule, ChaosSpec
from repro.net.failures import FailureInjector
from repro.net.topology import TopologyBuilder
from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.obs.registry import Histogram, MetricsRegistry
from repro.openflow.channel import ChannelFaultModel
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.traffic import host_pair_packets

# -- registry merge algebra ------------------------------------------------------

_NAMES = st.sampled_from(["a_total", "b_total", "c_seconds"])
_LABELS = st.sampled_from([{}, {"switch": "s0"}, {"switch": "s1"}])

_COUNTER_OPS = st.lists(
    st.tuples(_NAMES, _LABELS, st.integers(min_value=0, max_value=1000)),
    max_size=20,
)
_GAUGE_OPS = st.lists(
    st.tuples(_NAMES, _LABELS, st.integers(min_value=-50, max_value=50)),
    max_size=10,
)
# Dyadic rationals: float addition over them is exact, so histogram sums
# stay bit-identical under any merge grouping (the property under test is
# the merge algebra, not IEEE rounding).
_HISTO_SAMPLES = st.integers(min_value=0, max_value=640).map(lambda n: n / 64)
_HISTO_OPS = st.lists(st.tuples(_NAMES, _LABELS, _HISTO_SAMPLES), max_size=20)
_REGISTRY_OPS = st.tuples(_COUNTER_OPS, _GAUGE_OPS, _HISTO_OPS)


def _build_registry(ops) -> MetricsRegistry:
    counters, gauges, histos = ops
    registry = MetricsRegistry()
    for name, labels, amount in counters:
        registry.counter(name, **labels).inc(amount)
    for name, labels, level in gauges:
        registry.gauge("g_" + name, **labels).set(level)
    for name, labels, sample in histos:
        registry.histogram("h_" + name, **labels).observe(sample)
    return registry


@given(ops=st.lists(_REGISTRY_OPS, min_size=3, max_size=3))
def test_merge_is_associative(ops):
    a, b, c = (_build_registry(o) for o in ops)
    left = MetricsRegistry.merged(MetricsRegistry.merged(a, b), c)
    a2, b2, c2 = (_build_registry(o) for o in ops)
    right = MetricsRegistry.merged(a2, MetricsRegistry.merged(b2, c2))
    assert left.snapshot() == right.snapshot()


@given(
    ops=st.lists(_REGISTRY_OPS, min_size=2, max_size=4),
    order=st.randoms(use_true_random=False),
)
def test_merge_is_commutative(ops, order):
    registries = [_build_registry(o) for o in ops]
    baseline = MetricsRegistry.merged(*registries).snapshot()
    shuffled = [_build_registry(o) for o in ops]
    order.shuffle(shuffled)
    assert MetricsRegistry.merged(*shuffled).snapshot() == baseline


# -- histogram quantiles ----------------------------------------------------------

@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_histogram_quantiles_bound_samples(samples, q):
    histogram = Histogram()
    for sample in samples:
        histogram.observe(sample)
    estimate = histogram.quantile(q)
    assert min(samples) <= estimate <= max(samples)
    assert histogram.count == len(samples)
    assert histogram.min == min(samples)
    assert histogram.max == max(samples)


@given(
    pairs=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            max_size=30,
        ),
        min_size=2,
        max_size=2,
    )
)
def test_histogram_merge_preserves_totals(pairs):
    merged = Histogram()
    for samples in pairs:
        part = Histogram()
        for sample in samples:
            part.observe(sample)
        merged.merge_from(part)
    everything = [s for samples in pairs for s in samples]
    assert merged.count == len(everything)
    if everything:
        assert merged.min == min(everything)
        assert merged.max == max(everything)


# -- trace accounting under chaos --------------------------------------------------

@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss=st.sampled_from([0.0, 0.02, 0.1]),
    channel_drop=st.sampled_from([0.0, 0.1]),
)
def test_trace_accounting_matches_simnet(seed, loss, channel_drop):
    """Every injected packet traces to exactly one terminal event, and the
    tracer's totals equal the network's delivery log, chaos included."""
    previous = obs_context.current()
    try:
        context = fresh_run_context(trace=True)
        # Hosts hang off access switches only, so chaos kills (cores and
        # authorities) never detach a traffic source.
        topo = TopologyBuilder.three_tier_campus(
            core_count=2, distribution_count=2,
            access_per_distribution=2, hosts_per_access=1,
        )
        if loss > 0:
            graph = topo.graph
            for a, b, data in graph.edges(data=True):
                roles = (graph.nodes[a].get("role"), graph.nodes[b].get("role"))
                if roles == ("switch", "switch"):
                    data["spec"] = dataclasses.replace(
                        data["spec"], loss_probability=loss
                    )
        rules, host_ips = routing_policy_for_topology(
            topo, FIVE_TUPLE_LAYOUT, seed=seed
        )
        authorities = ["dist0", "dist1"]
        dn = DifaneNetwork.build(
            topo,
            rules,
            FIVE_TUPLE_LAYOUT,
            authority_switches=authorities,
            replication=2,
            cache_capacity=64,
            loss_seed=seed,
        )
        fault_model = ChannelFaultModel(drop_probability=channel_drop, seed=seed)
        dn.controller.connect_control_plane(
            latency_s=1e-3,
            fault_model=fault_model,
            heartbeat_interval_s=0.02,
            miss_threshold=2,
        )
        injector = FailureInjector(dn.network)
        spec = ChaosSpec(seed=seed, duration_s=0.2)
        ChaosSchedule.randomized(
            dn.network,
            injector,
            spec,
            kill_candidates=["core0", "core1"],
            authority_candidates=authorities,
            fault_model=fault_model,
        )
        count = 60
        for timed in host_pair_packets(
            topo, host_ips, FIVE_TUPLE_LAYOUT,
            count=count, rate=1000.0, seed=seed,
        ):
            dn.send_at(timed.time, timed.source_host, timed.packet)
        dn.run(until=0.8)

        network = dn.network
        accounting = context.tracer.accounting()
        assert accounting["truncated"] == 0
        assert accounting["ingress"] == count
        assert accounting["delivered"] == len(network.delivered())
        assert accounting["dropped"] == len(network.dropped())
        assert accounting["degraded"] == sum(
            s.degraded_packets for s in dn.switches()
        )
        # Zero unaccounted packets: everything injected terminated.
        assert accounting["delivered"] + accounting["dropped"] == count
        # The registry mirrors the same totals.
        metrics = context.metrics
        assert metrics.value("packets_injected_total") == count
        assert metrics.value("packets_delivered_total") == len(network.delivered())
        assert metrics.sum_counters("packets_dropped_total") == len(network.dropped())
        # Exactly one terminal event per packet.
        for packet_id, events in context.tracer.terminal_events_by_packet().items():
            assert len(events) == 1, f"packet {packet_id} terminated twice"
    finally:
        obs_context.install(previous)
