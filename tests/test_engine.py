"""Tests for the pluggable match-engine layer.

The load-bearing property: :class:`LinearEngine` is the semantics oracle,
and every other backend must return the *identical* winning rule object —
same priority order, same first-installed-wins tie-break — on any policy
and any packet.  Randomized policies (both unstructured hypothesis rules
and ClassBench ACL/FW/IPC classifiers) drive that equivalence here.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowspace import (
    DecisionTreeEngine,
    ENGINE_CHOICES,
    Forward,
    LinearEngine,
    Match,
    Packet,
    Rule,
    RuleTable,
    TupleSpaceEngine,
    TWO_FIELD_LAYOUT,
    create_engine,
    get_default_engine,
    set_default_engine,
)
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.tuplespace import _TupleGroup
from repro.switch.pipeline import DifanePipeline
from repro.switch.tcam import Tcam
from repro.workloads.classbench import generate_classbench

L = TWO_FIELD_LAYOUT
ALT_ENGINES = [name for name in ENGINE_CHOICES if name != "linear"]


def rule(priority, f1="xxxxxxxx", f2="xxxxxxxx"):
    return Rule(Match.build(L, f1=f1, f2=f2), priority, Forward("out"))


def engines_with(rules):
    oracle = LinearEngine(L)
    others = {name: create_engine(name, L) for name in ALT_ENGINES}
    for r in rules:
        oracle.add(r)
        for engine in others.values():
            engine.add(r)
    return oracle, others


def assert_equivalent(oracle, others, probes):
    for bits in probes:
        expected = oracle.lookup_bits(bits)
        for name, engine in others.items():
            got = engine.lookup_bits(bits)
            assert got is expected, (
                f"{name} returned {got!r}, oracle returned {expected!r} "
                f"for bits {bits:#x}"
            )


# ---------------------------------------------------------------------------
# Oracle equivalence (the shared property every backend must satisfy)
# ---------------------------------------------------------------------------

pattern = st.text(alphabet="01x", min_size=8, max_size=8)


class TestOracleEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        specs=st.lists(
            st.tuples(pattern, pattern, st.integers(0, 3)),
            min_size=1,
            max_size=32,
        ),
        probes=st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=24),
    )
    def test_random_policies(self, specs, probes):
        """All engines agree with the oracle, including priority ties.

        Priorities are drawn from {0..3} so most examples contain ties:
        the tie-break (first installed wins) is exercised constantly.
        """
        rules = [rule(priority, f1, f2) for f1, f2, priority in specs]
        oracle, others = engines_with(rules)
        assert_equivalent(oracle, others, probes)
        # Removing a slice must not disturb equivalence either.
        for doomed in rules[::3]:
            assert oracle.remove(doomed)
            for engine in others.values():
                assert engine.remove(doomed)
        assert_equivalent(oracle, others, probes)

    @pytest.mark.parametrize("kind", ["acl", "fw", "ipc"])
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_classbench_policies(self, kind, seed):
        layout = FIVE_TUPLE_LAYOUT
        rules = generate_classbench(kind, count=150, seed=seed, layout=layout)
        rng = random.Random(seed)
        probes = [rng.getrandbits(layout.width) for _ in range(100)]
        probes += [r.match.ternary.sample(rng) for r in rules[::5]]
        oracle = LinearEngine(layout)
        others = {name: create_engine(name, layout) for name in ALT_ENGINES}
        for r in rules:
            oracle.add(r)
            for engine in others.values():
                engine.add(r)
        for bits in probes:
            expected = oracle.lookup_bits(bits)
            for name, engine in others.items():
                assert engine.lookup_bits(bits) is expected, (name, bits)
        for name, engine in others.items():
            assert engine.batch_lookup(probes) == oracle.batch_lookup(probes), name
            assert engine.rules() == oracle.rules(), name

    def test_priority_tie_first_installed_wins(self):
        first = rule(5, f1="0000xxxx")
        second = rule(5, f1="0000xxxx")
        probe = 0x00FF  # f1=0x00 matches both
        for name in ENGINE_CHOICES:
            engine = create_engine(name, L)
            engine.add(first)
            engine.add(second)
            assert engine.lookup_bits(probe) is first, name

    def test_mutation_after_dtree_build(self):
        """Adds/removes after a tree build hit the overlay, not stale data."""
        engine = DecisionTreeEngine(L)
        base = [rule(1, f1=f"{i:08b}") for i in range(32)]
        for r in base:
            engine.add(r)
        engine.build()
        shadow = rule(9, f1="000000xx")
        engine.add(shadow)  # lands in the overlay
        probe = 0x01FF  # f1=0x01: matched by base[1] and shadow
        assert engine.lookup_bits(probe) is shadow
        assert engine.remove(shadow)
        assert engine.lookup_bits(probe) is base[1]
        assert engine.remove(base[1])  # tombstones a tree entry
        assert engine.lookup_bits(probe) is None


# ---------------------------------------------------------------------------
# LinearEngine bookkeeping (the remove/clear fix)
# ---------------------------------------------------------------------------

class TestLinearEngineBookkeeping:
    def test_remove_is_by_identity(self):
        engine = LinearEngine(L)
        installed = rule(3, f1="0000xxxx")
        twin = rule(3, f1="0000xxxx")  # equal match, different object
        engine.add(installed)
        assert twin not in engine
        assert not engine.remove(twin)
        assert engine.remove(installed)
        assert len(engine) == 0

    def test_clear_resets_sequence_state(self):
        engine = LinearEngine(L)
        stale = rule(1)
        engine.add(stale)
        engine.clear()
        assert engine._sequence == 0
        assert not engine._order and not engine._by_id
        # A fresh pair after clear() must tie-break as if newly built.
        first, second = rule(2, f1="0000xxxx"), rule(2, f1="0000xxxx")
        engine.add(first)
        engine.add(second)
        assert engine.lookup_bits(0x00FF) is first
        assert stale not in engine

    def test_remove_if_cleans_indices(self):
        engine = LinearEngine(L)
        rules = [rule(i % 2, f1=f"{i:08b}") for i in range(10)]
        for r in rules:
            engine.add(r)
        removed = engine.remove_if(lambda r: r.priority == 0)
        assert len(removed) == 5
        assert len(engine) == 5
        for r in removed:
            assert r not in engine
            engine.add(r)  # re-adding must work cleanly
        assert len(engine) == 10


# ---------------------------------------------------------------------------
# Tuple-space invariant (regression: mask/group-key agreement)
# ---------------------------------------------------------------------------

class TestTupleGroupInvariant:
    def test_mismatched_mask_rejected(self):
        grouped = rule(1, f1="00000000")  # mask covers f1 only
        group = _TupleGroup(grouped.match.ternary.mask)
        group.insert((-1, 0), grouped)
        intruder = rule(1, f2="00000000")  # different mask shape
        with pytest.raises(ValueError, match="does not agree"):
            group.insert((-1, 1), intruder)
        # The failed insert must not have corrupted the group.
        assert len(group) == 1

    def test_engine_routes_masks_to_matching_groups(self):
        engine = TupleSpaceEngine(L)
        a, b = rule(1, f1="00000001"), rule(1, f2="00000001")
        engine.add(a)
        engine.add(b)
        assert engine.tuple_count == 2
        assert engine.lookup_bits(0x01FF) is a
        assert engine.lookup_bits(0xFF01) is b


# ---------------------------------------------------------------------------
# Engine selection plumbing
# ---------------------------------------------------------------------------

class TestEngineSelection:
    def test_create_engine_by_name_and_default(self):
        assert isinstance(create_engine("linear", L), LinearEngine)
        assert isinstance(create_engine("tuplespace", L), TupleSpaceEngine)
        assert isinstance(create_engine("dtree", L), DecisionTreeEngine)
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("bogus", L)
        previous = get_default_engine()
        try:
            set_default_engine("tuplespace")
            assert isinstance(create_engine(None, L), TupleSpaceEngine)
        finally:
            set_default_engine(previous)
        with pytest.raises(ValueError, match="unknown engine"):
            set_default_engine("bogus")

    def test_rule_table_threads_engine(self):
        table = RuleTable(L, engine="tuplespace")
        assert isinstance(table.engine, TupleSpaceEngine)
        r = rule(1, f1="0000xxxx")
        table.add(r)
        assert table.lookup_bits(0x00FF) is r
        assert "tuplespace" in repr(table)

    def test_instance_spec_is_used_as_is(self):
        engine = LinearEngine(L)
        table = RuleTable(L, engine=engine)
        assert table.engine is engine


# ---------------------------------------------------------------------------
# Batch lookup paths
# ---------------------------------------------------------------------------

def _five_tuple_packets(count, seed=0):
    rng = random.Random(seed)
    return [
        Packet.from_fields(
            FIVE_TUPLE_LAYOUT,
            nw_src=rng.getrandbits(32),
            nw_dst=rng.getrandbits(32),
            nw_proto=6,
            tp_src=rng.randrange(1024, 65535),
            tp_dst=rng.choice([80, 443, 22, 8080]),
        )
        for _ in range(count)
    ]


class TestBatchPaths:
    @pytest.mark.parametrize("engine", ENGINE_CHOICES)
    def test_table_batch_matches_sequential(self, engine):
        layout = FIVE_TUPLE_LAYOUT
        rules = generate_classbench("acl", count=80, seed=3, layout=layout)
        table = RuleTable(layout, rules, engine=engine)
        packets = _five_tuple_packets(50, seed=4)
        bits = [p.header_bits for p in packets]
        assert table.batch_lookup(bits) == [table.lookup_bits(b) for b in bits]

    def test_tcam_lookup_batch_counters(self):
        layout = FIVE_TUPLE_LAYOUT
        rules = generate_classbench("acl", count=80, seed=5, layout=layout)
        packets = _five_tuple_packets(40, seed=6)
        sequential, batched = Tcam(layout), Tcam(layout)
        for r in rules:
            sequential.install(r)
            batched.install(r)
        expected = [sequential.lookup(p, now=1.0) for p in packets]
        got = batched.lookup_batch(packets, now=1.0)
        assert got == expected
        assert (batched.lookups, batched.hits) == (
            sequential.lookups,
            sequential.hits,
        )

    def test_pipeline_lookup_batch_matches_sequential(self):
        layout = FIVE_TUPLE_LAYOUT
        rules = generate_classbench("acl", count=60, seed=7, layout=layout)
        packets = _five_tuple_packets(40, seed=8)
        sequential, batched = DifanePipeline(layout), DifanePipeline(layout)
        for pipeline in (sequential, batched):
            for index, r in enumerate(rules):
                # Spread the policy across the three stages.
                stage = (pipeline.cache, pipeline.authority, pipeline.partition)[
                    index % 3
                ]
                stage.install(r)
        expected = [sequential.lookup(p) for p in packets]
        got = batched.lookup_batch(packets)
        assert [(r.rule, r.stage) for r in got] == [
            (r.rule, r.stage) for r in expected
        ]
        assert batched.misses == sequential.misses

    def test_burst_injection_equals_per_packet(self):
        from repro.core import DifaneNetwork
        from repro.net import TopologyBuilder
        from repro.workloads.policies import routing_policy_for_topology

        def build():
            topo = TopologyBuilder.linear(3, hosts_per_switch=1)
            rules, host_ips = routing_policy_for_topology(topo, FIVE_TUPLE_LAYOUT)
            dn = DifaneNetwork.build(
                topo,
                rules,
                FIVE_TUPLE_LAYOUT,
                authority_switches=["s1"],
                redirect_rate=None,
            )
            return dn, host_ips

        def packets(host_ips):
            return [
                Packet.from_fields(
                    FIVE_TUPLE_LAYOUT,
                    flow_id=i,
                    nw_src=0x0A000000 | i,
                    nw_dst=host_ips["h2"],
                    nw_proto=6,
                    tp_src=1024 + i,
                    tp_dst=80,
                )
                for i in range(20)
            ]

        burst_dn, host_ips = build()
        burst_dn.network.inject_burst_at_switch("s0", packets(host_ips))
        burst_dn.network.run()

        seq_dn, host_ips = build()
        for packet in packets(host_ips):
            seq_dn.network.inject_at_switch("s0", packet)
        seq_dn.network.run()

        assert len(burst_dn.network.delivered()) == len(seq_dn.network.delivered())
        for name in ("s0", "s1", "s2"):
            burst_sw, seq_sw = burst_dn.switch(name), seq_dn.switch(name)
            assert burst_sw.cache_hits == seq_sw.cache_hits, name
            assert burst_sw.authority_hits == seq_sw.authority_hits, name
            assert burst_sw.redirects_out == seq_sw.redirects_out, name
