"""Unit tests for packets, actions and rules."""

import random

import pytest

from repro.flowspace import (
    ActionList,
    Drop,
    Encapsulate,
    FIVE_TUPLE_LAYOUT,
    Forward,
    Match,
    Packet,
    Rule,
    SendToController,
    SetField,
    Ternary,
    TWO_FIELD_LAYOUT,
)
from repro.flowspace.rule import RuleKind


class TestPacket:
    def test_from_fields(self):
        p = Packet.from_fields(FIVE_TUPLE_LAYOUT, nw_src=0x0A000001, tp_dst=443)
        assert p.field("nw_src") == 0x0A000001
        assert p.field("tp_dst") == 443
        assert p.field("nw_dst") == 0

    def test_fields_dict(self):
        p = Packet.from_fields(TWO_FIELD_LAYOUT, f1=3, f2=7)
        assert p.fields() == {"f1": 3, "f2": 7}

    def test_flow_key_is_header(self):
        p = Packet.from_fields(TWO_FIELD_LAYOUT, f1=1)
        assert p.flow_key() == p.header_bits

    def test_packet_ids_unique(self):
        a = Packet.from_fields(TWO_FIELD_LAYOUT)
        b = Packet.from_fields(TWO_FIELD_LAYOUT)
        assert a.packet_id != b.packet_id

    def test_encapsulation_cycle(self):
        p = Packet.from_fields(TWO_FIELD_LAYOUT)
        assert not p.is_encapsulated
        p.encapsulate("auth0")
        assert p.is_encapsulated
        assert p.encap_destination == "auth0"
        p.decapsulate()
        assert not p.is_encapsulated

    def test_random_packet_in_range(self):
        rng = random.Random(1)
        p = Packet.random(TWO_FIELD_LAYOUT, rng)
        assert 0 <= p.header_bits < (1 << 16)

    def test_describe_mentions_ips(self):
        p = Packet.from_fields(FIVE_TUPLE_LAYOUT, nw_src=0x0A000001)
        assert "10.0.0.1" in p.describe()


class TestActions:
    def test_equality(self):
        assert Forward("a") == Forward("a")
        assert Forward("a") != Forward("b")
        assert Drop() == Drop()
        assert SendToController() == SendToController()
        assert Encapsulate("x") == Encapsulate("x")

    def test_action_list_flattens(self):
        inner = ActionList(SetField("f1", 3), Forward("a"))
        outer = ActionList(inner)
        assert list(outer) == [SetField("f1", 3), Forward("a")]

    def test_action_list_equality_and_hash(self):
        a = ActionList(Forward("x"))
        b = ActionList(Forward("x"))
        assert a == b
        assert hash(a) == hash(b)

    def test_is_drop(self):
        assert ActionList(Drop()).is_drop
        assert not ActionList(Forward("a")).is_drop

    def test_final_forward(self):
        al = ActionList(SetField("f1", 1), Forward("z"))
        assert al.final_forward() == Forward("z")
        assert ActionList(Drop()).final_forward() is None

    def test_set_field_non_terminal(self):
        assert not SetField("f1", 1).terminal
        assert Forward("a").terminal


class TestMatch:
    def test_matches_packet(self):
        m = Match.build(TWO_FIELD_LAYOUT, f1="0000xxxx")
        assert m.matches_packet(Packet.from_fields(TWO_FIELD_LAYOUT, f1=5))
        assert not m.matches_packet(Packet.from_fields(TWO_FIELD_LAYOUT, f1=200))

    def test_layout_mismatch_raises(self):
        m = Match.any(TWO_FIELD_LAYOUT)
        with pytest.raises(ValueError):
            m.matches_packet(Packet.from_fields(FIVE_TUPLE_LAYOUT))

    def test_intersection_and_subtract(self):
        a = Match.build(TWO_FIELD_LAYOUT, f1="0000xxxx")
        b = Match.build(TWO_FIELD_LAYOUT, f2="0000xxxx")
        overlap = a.intersection(b)
        assert overlap is not None
        assert a.covers(overlap)
        remainder = a.subtract(b)
        for piece in remainder:
            assert a.covers(piece)
            assert not piece.intersects(b)

    def test_field_accessor(self):
        m = Match.build(TWO_FIELD_LAYOUT, f1=9)
        assert m.field("f1") == Ternary.exact(9, 8)
        assert m.field("f2").is_wildcard()

    def test_match_width_checked(self):
        with pytest.raises(ValueError):
            Match(TWO_FIELD_LAYOUT, Ternary.wildcard(8))


class TestRule:
    def make(self, priority=10, **fields):
        return Rule(Match.build(TWO_FIELD_LAYOUT, **fields), priority, Forward("a"))

    def test_actions_coerced_to_list(self):
        rule = self.make()
        assert isinstance(rule.actions, ActionList)

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError):
            self.make(priority=-1)

    def test_counters(self):
        rule = self.make(f1=1)
        p = Packet.from_fields(TWO_FIELD_LAYOUT, f1=1)
        p.size_bytes = 100
        rule.record_hit(p, now=1.5)
        assert rule.packet_count == 1
        assert rule.byte_count == 100
        assert rule.last_hit_at == 1.5

    def test_derive_tracks_origin(self):
        base = self.make()
        frag = base.derive(kind=RuleKind.CACHE)
        frag2 = frag.derive()
        assert frag.origin is base
        assert frag2.root_origin() is base
        assert base.root_origin() is base

    def test_clip_to_inside(self):
        rule = self.make(f1="0000xxxx")
        clipped = rule.clip_to(Ternary.wildcard(16))
        assert clipped.match == rule.match
        assert clipped.origin is rule

    def test_clip_to_partial(self):
        rule = self.make()  # matches everything
        region = Ternary.from_string("0" + "x" * 15)
        clipped = rule.clip_to(region)
        assert clipped.match.ternary == region

    def test_clip_to_disjoint(self):
        rule = self.make(f1="00000000")
        region = Ternary.from_string("1" + "x" * 15)
        assert rule.clip_to(region) is None

    def test_idle_timeout(self):
        rule = self.make()
        rule.idle_timeout = 1.0
        rule.installed_at = 0.0
        assert not rule.is_expired(0.5)
        assert rule.is_expired(1.5)
        rule.last_hit_at = 1.2
        assert not rule.is_expired(1.5)
        assert rule.is_expired(2.3)

    def test_hard_timeout(self):
        rule = self.make()
        rule.hard_timeout = 2.0
        rule.installed_at = 0.0
        rule.last_hit_at = 1.9  # activity does not save it
        assert not rule.is_expired(1.9)
        assert rule.is_expired(2.0)

    def test_no_timeouts_never_expires(self):
        rule = self.make()
        rule.installed_at = 0.0
        assert not rule.is_expired(1e9)
