"""Telemetry recorder, health detectors, export formats, and obs diff."""

import json

import pytest

from repro.analysis.dashboard import (
    authority_load_series,
    counter_timeline,
    render_report,
    sample_timelines,
)
from repro.analysis.obsdiff import diff_documents, render_diff
from repro.net.events import EventScheduler
from repro.obs import fresh_run_context
from repro.obs.export import prometheus_text, telemetry_jsonl_lines, write_telemetry_jsonl
from repro.obs.health import (
    CACHE_CHURN_THRESHOLD,
    IMBALANCE_MIN_LOAD,
    evaluate_telemetry,
    jain_fairness,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    DEFAULT_TELEMETRY_INTERVAL_S,
    TELEMETRY_SCHEMA,
    TelemetryRecorder,
    telemetry_section,
)


@pytest.fixture(autouse=True)
def _fresh_context():
    yield fresh_run_context()


class TestRecorder:
    def test_window_attribution_is_exact(self):
        registry = MetricsRegistry()
        recorder = TelemetryRecorder(registry, interval_s=0.1, enabled=True)
        counter = registry.counter("events_total")
        counter.inc(4)
        index, deadline = recorder.roll(0, 0.25, [])
        assert (index, deadline) == (2, pytest.approx(0.3))
        counter.inc(6)
        recorder.flush(index, [])
        section = recorder.export()
        assert section["schema"] == TELEMETRY_SCHEMA
        # Window 0 holds the pre-roll increments; the empty window 1 is
        # skipped entirely; window 2 holds the residual flush.
        assert [w["index"] for w in section["windows"]] == [0, 2]
        assert section["windows"][0]["counters"] == {"events_total": 4}
        assert section["windows"][1]["counters"] == {"events_total": 6}

    def test_roll_closes_every_elapsed_window(self):
        registry = MetricsRegistry()
        recorder = TelemetryRecorder(registry, interval_s=0.05, enabled=True)
        index, deadline = recorder.roll(0, 0.26, [])
        assert index == 5
        assert deadline == pytest.approx(0.3)

    def test_boundary_event_lands_in_next_window(self):
        registry = MetricsRegistry()
        recorder = TelemetryRecorder(registry, interval_s=0.1, enabled=True)
        counter = registry.counter("events_total")
        counter.inc()  # before t=0.1
        index, _ = recorder.roll(0, 0.1, [])  # an event exactly at the boundary
        counter.inc()  # the boundary event's effect
        recorder.flush(index, [])
        windows = recorder.export()["windows"]
        assert [w["index"] for w in windows] == [0, 1]
        assert all(w["counters"]["events_total"] == 1 for w in windows)

    def test_probe_samples_max_merge_within_window(self):
        registry = MetricsRegistry()
        recorder = TelemetryRecorder(registry, interval_s=0.1, enabled=True)
        recorder.flush(0, [lambda: {"level": 3.0}])
        recorder.flush(0, [lambda: {"level": 2.0}])
        windows = recorder.export()["windows"]
        assert windows[0]["samples"] == {"level": 3.0}

    def test_excluded_prefixes_never_recorded(self):
        registry = MetricsRegistry()
        recorder = TelemetryRecorder(registry, interval_s=0.1, enabled=True)
        registry.counter("profile_lookup").inc(5)
        registry.counter("artifact_cache_hits_total").inc(5)
        registry.counter("real_total").inc(1)
        recorder.flush(0, [])
        assert recorder.export()["windows"][0]["counters"] == {"real_total": 1}

    def test_merge_dump_equals_serial_accumulation(self):
        registry = MetricsRegistry()
        serial = TelemetryRecorder(registry, interval_s=0.1, enabled=True)
        counter = registry.counter("events_total")
        counter.inc(3)
        index, _ = serial.roll(0, 0.15, [])
        counter.inc(2)
        serial.flush(index, [])

        # The same history split across two "workers".
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        worker_a = TelemetryRecorder(reg_a, interval_s=0.1, enabled=True)
        reg_a.counter("events_total").inc(3)
        worker_a.flush(0, [])
        worker_b = TelemetryRecorder(reg_b, interval_s=0.1, enabled=True)
        index, _ = worker_b.roll(0, 0.15, [])
        reg_b.counter("events_total").inc(2)
        worker_b.flush(index, [])

        parent = TelemetryRecorder(MetricsRegistry(), interval_s=0.1, enabled=True)
        parent.merge_dump(worker_b.dump_windows())  # order must not matter
        parent.merge_dump(worker_a.dump_windows())
        assert parent.export()["windows"] == serial.export()["windows"]

    def test_merge_rejects_mismatched_interval(self):
        parent = TelemetryRecorder(MetricsRegistry(), interval_s=0.1, enabled=True)
        other = TelemetryRecorder(MetricsRegistry(), interval_s=0.2, enabled=True)
        other.flush(0, [lambda: {"level": 1.0}])
        with pytest.raises(ValueError):
            parent.merge_dump(other.dump_windows())

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryRecorder(MetricsRegistry(), interval_s=0.0)


class TestSchedulerSampling:
    def test_scheduler_closes_windows_on_simulated_time(self):
        context = fresh_run_context(telemetry=0.1)
        counter = context.metrics.counter("ticks_total")
        scheduler = EventScheduler()
        for step in range(5):
            scheduler.schedule_at(step * 0.06, counter.inc)
        scheduler.run()
        windows = context.telemetry.export()["windows"]
        # Events at 0, 0.06 → window 0; 0.12, 0.18 → window 1; 0.24 → 2.
        assert [w["counters"]["ticks_total"] for w in windows] == [2, 2, 1]

    def test_disabled_recorder_records_nothing(self):
        context = fresh_run_context()
        assert not context.telemetry.enabled
        scheduler = EventScheduler()
        scheduler.schedule_at(0.2, lambda: None)
        scheduler.run()
        assert len(context.telemetry) == 0

    def test_probes_sampled_at_window_close(self):
        context = fresh_run_context(telemetry=0.1)
        scheduler = EventScheduler()
        levels = iter([5.0, 9.0, 2.0])
        scheduler.add_probe(lambda: {"occupancy": next(levels)})
        for step in range(3):
            scheduler.schedule_at(0.05 + step * 0.1, lambda: None)
        scheduler.run()
        windows = context.telemetry.export()["windows"]
        by_index = {w["index"]: w["samples"]["occupancy"] for w in windows}
        assert by_index == {0: 5.0, 1: 9.0, 2: 2.0}

    def test_cursor_persists_across_run_calls(self):
        context = fresh_run_context(telemetry=0.1)
        counter = context.metrics.counter("ticks_total")
        scheduler = EventScheduler()
        scheduler.schedule_at(0.05, counter.inc)
        scheduler.run()
        scheduler.schedule_at(0.15, counter.inc)
        scheduler.run()
        windows = context.telemetry.export()["windows"]
        assert [w["index"] for w in windows] == [0, 1]

    def test_fresh_context_defaults(self):
        assert fresh_run_context(telemetry=True).telemetry.interval_s == \
            DEFAULT_TELEMETRY_INTERVAL_S
        assert fresh_run_context(telemetry=0.25).telemetry.interval_s == 0.25
        assert not fresh_run_context(telemetry=False).telemetry.enabled
        # Telemetry needs a live registry to sample.
        assert not fresh_run_context(
            metrics_enabled=False, telemetry=True
        ).telemetry.enabled


def _window(index, counters, interval=0.05, samples=None):
    window = {
        "index": index,
        "start": round(index * interval, 9),
        "end": round((index + 1) * interval, 9),
        "counters": counters,
    }
    if samples:
        window["samples"] = samples
    return window


def _section(windows, interval=0.05):
    return {"schema": TELEMETRY_SCHEMA, "interval_s": interval, "windows": windows}


class TestHealth:
    def test_jain_fairness(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
        assert jain_fairness([10, 0]) == pytest.approx(0.5)

    def test_imbalance_fires_on_skewed_load(self):
        load = float(IMBALANCE_MIN_LOAD)
        section = _section([
            _window(0, {
                "difane_redirects_handled_total{switch=a}": load,
                "difane_redirects_handled_total{switch=b}": load,
            }),
            _window(1, {"difane_redirects_handled_total{switch=a}": 2 * load}),
        ])
        findings = evaluate_telemetry(section)
        imbalance = [f for f in findings if f["detector"] == "authority-imbalance"]
        assert [f["window"] for f in imbalance] == [1]
        assert imbalance[0]["severity"] == "warning"

    def test_imbalance_needs_two_authorities_and_load(self):
        # One authority → no baseline to be unfair against; tiny windows
        # below the load floor are skipped too.
        section = _section([
            _window(0, {"difane_redirects_handled_total{switch=a}": 100.0}),
            _window(1, {
                "difane_redirects_handled_total{switch=a}": 1.0,
            }),
        ])
        assert not [
            f for f in evaluate_telemetry(section)
            if f["detector"] == "authority-imbalance"
        ]

    def test_degraded_mode_is_critical(self):
        section = _section([
            _window(0, {"difane_degraded_packets_total{switch=a}": 3.0}),
        ])
        findings = [
            f for f in evaluate_telemetry(section)
            if f["detector"] == "degraded-mode"
        ]
        assert findings and findings[0]["severity"] == "critical"

    def test_cache_churn_from_probe_levels(self):
        churn = float(CACHE_CHURN_THRESHOLD)
        section = _section([
            _window(0, {}, samples={"difane_cache_evictions{switch=a}": 2.0}),
            _window(1, {}, samples={
                "difane_cache_evictions{switch=a}": 2.0 + churn,
            }),
        ])
        findings = [
            f for f in evaluate_telemetry(section)
            if f["detector"] == "cache-churn"
        ]
        assert [f["window"] for f in findings] == [1]

    def test_findings_deterministic(self):
        section = _section([
            _window(0, {
                "difane_redirects_handled_total{switch=a}": 50.0,
                "difane_redirects_handled_total{switch=b}": 1.0,
                "difane_degraded_packets_total{switch=a}": 1.0,
            }),
        ])
        assert evaluate_telemetry(section) == evaluate_telemetry(section)

    def test_zero_windows_yield_no_findings(self):
        assert evaluate_telemetry(_section([])) == []

    def test_single_balanced_window_yields_no_actionable_findings(self):
        # One window with balanced load: no trend, no baseline, nothing
        # beyond the informational top-switches digest may fire.
        load = float(IMBALANCE_MIN_LOAD)
        section = _section([
            _window(0, {
                "difane_redirects_handled_total{switch=a}": load,
                "difane_redirects_handled_total{switch=b}": load,
            }),
        ])
        findings = evaluate_telemetry(section)
        assert [f for f in findings if f["severity"] != "info"] == []

    def test_all_zero_loads_yield_no_spurious_findings(self):
        # Windows exist but carry no authority load at all (e.g. a run
        # where every packet hit the ingress cache): the imbalance
        # detector must not divide by a zero total or flag Jain=1.0
        # noise, and no other detector may fire on silence.
        section = _section([
            _window(0, {"packets_delivered_total": 10.0}),
            _window(1, {
                "difane_redirects_handled_total{switch=a}": 0.0,
                "difane_redirects_handled_total{switch=b}": 0.0,
            }),
            _window(2, {}),
        ])
        assert evaluate_telemetry(section) == []


class TestExport:
    def test_prometheus_counters_and_gauges(self):
        text = prometheus_text({
            "counters": {"requests_total{code=200}": 7, "plain_total": 1},
            "gauges": {"depth": 2.5},
            "histograms": {},
        })
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{code="200"} 7' in text
        assert "plain_total 1" in text
        assert "depth 2.5" in text

    def test_prometheus_histogram_is_cumulative(self):
        text = prometheus_text({
            "counters": {}, "gauges": {},
            "histograms": {
                "latency": {
                    "count": 3, "sum": 0.6, "min": 0.1, "max": 0.3,
                    "buckets": {"0.125": 1, "0.25": 1, "+inf": 1},
                },
            },
        })
        lines = text.splitlines()
        buckets = [line for line in lines if "_bucket" in line]
        assert buckets[0].endswith(" 1")
        assert buckets[1].endswith(" 2")
        assert 'le="+Inf"} 3' in buckets[2]
        assert "latency_sum 0.6" in text
        assert "latency_count 3" in text

    def test_registry_snapshot_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("packets_total", reason="loss").inc(4)
        registry.histogram("delay_s").observe(1e-4)
        text = prometheus_text(registry.snapshot())
        assert 'packets_total{reason="loss"} 4' in text
        assert "delay_s_count 1" in text

    def test_telemetry_jsonl(self, tmp_path):
        section = _section([
            _window(0, {"a_total": 1.0}, samples={"level": 2.0}),
            _window(1, {"a_total": 3.0}),
        ])
        lines = telemetry_jsonl_lines(section)
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["samples"] == {"level": 2.0}
        section["findings"] = [{"detector": "x", "severity": "info",
                                "window": 0, "start": 0, "end": 1, "detail": "d"}]
        path = tmp_path / "tele.jsonl"
        count = write_telemetry_jsonl(path, section)
        assert count == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[-1]["finding"]["detector"] == "x"


class TestDashboard:
    def test_counter_timeline_sums_children(self):
        section = _section([
            _window(0, {
                "difane_cache_hits_total{switch=a}": 2.0,
                "difane_cache_hits_total{switch=b}": 3.0,
            }),
        ], interval=0.1)
        series = counter_timeline(section, "difane_cache_hits_total")
        assert series.points() == [(0.0, 50.0)]  # 5 events / 0.1 s

    def test_authority_load_series_one_per_switch(self):
        section = _section([
            _window(0, {
                "difane_redirects_handled_total{switch=a}": 4.0,
                "difane_redirects_handled_total{switch=b}": 6.0,
            }),
        ])
        series = authority_load_series(section)
        assert [s.label for s in series] == ["a", "b"]
        assert series[1].y == [6.0]

    def test_sample_timelines(self):
        section = _section([
            _window(0, {}, samples={"difane_cache_occupancy{switch=a}": 7.0}),
        ])
        series = sample_timelines(section, "difane_cache_occupancy")
        assert len(series) == 1 and series[0].label == "a"

    def test_render_report_with_and_without_telemetry(self):
        document = {
            "schema": "difane-metrics/1", "experiment": "X", "title": "X run",
            "telemetry": _section([
                _window(0, {
                    "packets_delivered_total": 10.0,
                    "difane_redirects_handled_total{switch=a}": 4.0,
                }),
            ]),
            "trace": {"ingress": 1, "delivered": 1},
        }
        document["telemetry"]["findings"] = [{
            "detector": "degraded-mode", "severity": "critical",
            "window": 0, "start": 0.0, "end": 0.05, "detail": "d",
        }]
        text = render_report(document)
        assert "Throughput" in text
        assert "Authority-switch load" in text
        assert "degraded-mode" in text
        assert "Trace accounting" in text
        bare = render_report({"schema": "difane-metrics/1", "experiment": "X"})
        assert "no telemetry section" in bare


class TestObsDiff:
    def test_identical_documents(self):
        doc = {"schema": "difane-metrics/1", "experiment": "X",
               "metrics": {"counters": {"a_total": 1}}}
        diff = diff_documents(doc, json.loads(json.dumps(doc)))
        assert diff["identical"]
        assert render_diff(diff).strip() == "documents are identical"

    def test_counter_change_reported(self):
        base = {"metrics": {"counters": {"a_total": 1, "gone_total": 2}}}
        cand = {"metrics": {"counters": {"a_total": 3, "new_total": 1}}}
        diff = diff_documents(base, cand)
        assert not diff["identical"]
        changes = {c["key"]: c["change"] for c in diff["sections"]["metrics"]}
        assert changes == {
            "counters.a_total": "changed",
            "counters.gone_total": "removed",
            "counters.new_total": "added",
        }

    def test_relative_tolerance(self):
        base = {"metrics": {"counters": {"a_total": 100}}}
        cand = {"metrics": {"counters": {"a_total": 101}}}
        assert not diff_documents(base, cand)["identical"]
        assert diff_documents(base, cand, rel_tolerance=0.05)["identical"]

    def test_new_critical_finding_is_regression(self):
        finding = {"detector": "degraded-mode", "severity": "critical",
                   "window": 1, "start": 0.05, "end": 0.1, "detail": "d"}
        base = {"telemetry": _section([]) | {"findings": []}}
        cand = {"telemetry": _section([]) | {"findings": [finding]}}
        diff = diff_documents(base, cand)
        assert diff["regressions"] == [finding]
        assert "REGRESSION" in render_diff(diff)

    def test_telemetry_window_drift_reported(self):
        base = {"telemetry": _section([_window(0, {"a_total": 1.0})])}
        cand = {"telemetry": _section([_window(0, {"a_total": 2.0})])}
        diff = diff_documents(base, cand)
        keys = [c["key"] for c in diff["sections"]["telemetry"]]
        assert keys == ["windows.0.a_total"]


class TestEndToEnd:
    def test_metrics_document_gains_versioned_section(self):
        from repro.experiments.common import ExperimentResult, metrics_document

        context = fresh_run_context(telemetry=0.1)
        counter = context.metrics.counter("events_total")
        scheduler = EventScheduler()
        scheduler.schedule_at(0.05, counter.inc)
        scheduler.run()
        document = metrics_document(
            ExperimentResult(name="T", title="t"), context=context
        )
        assert document["telemetry"]["schema"] == TELEMETRY_SCHEMA
        assert document["telemetry"]["windows"]
        assert "findings" in document["telemetry"]
        # Telemetry off → no section at all (documents stay byte-stable).
        plain = fresh_run_context()
        document = metrics_document(
            ExperimentResult(name="T", title="t"), context=plain
        )
        assert "telemetry" not in document

    def test_telemetry_section_helper_attaches_findings(self):
        context = fresh_run_context(telemetry=0.1)
        context.metrics.counter(
            "difane_degraded_packets_total", switch="a"
        ).inc(2)
        context.telemetry.flush(0, [])
        section = telemetry_section(context.telemetry)
        assert any(f["detector"] == "degraded-mode" for f in section["findings"])


class TestChaosAcceptance:
    """The PR's acceptance scenario, end to end.

    A chaos soak with an injected authority kill, run with telemetry:
    the document must carry per-window authority-load series and at
    least one imbalance/degraded-mode finding; ``repro report`` must
    render it; ``repro obs diff`` must flag the regression against a
    fault-free baseline.
    """

    def _soak_document(self, **kwargs):
        from repro.experiments.chaos import run_chaos_soak
        from repro.experiments.common import metrics_document

        context = fresh_run_context(telemetry=True)
        result = run_chaos_soak(rate=1_500.0, duration=0.4, **kwargs)
        return result, metrics_document(result, context=context)

    def test_kill_surfaces_in_series_findings_report_and_diff(self):
        # No failover backstop, caches pinned cold: the authority kill
        # must orphan partitions (degraded path) and skew redirect load.
        faulty_result, faulty = self._soak_document(
            cache_capacity=0, replication=1
        )
        _, clean = self._soak_document()

        labels = [s.label for s in faulty_result.series]
        assert "authority load: dist0" in labels
        assert "authority load: dist1" in labels
        assert faulty_result.notes["telemetry_windows"] > 0

        detectors = {
            f["detector"]: f["severity"]
            for f in faulty["telemetry"]["findings"]
        }
        assert detectors.get("authority-imbalance") == "warning"
        assert detectors.get("degraded-mode") == "critical"

        text = render_report(faulty)
        assert "Authority-switch load" in text
        assert "degraded-mode" in text

        diff = diff_documents(clean, faulty)
        assert diff["regressions"], "kill run must regress vs fault-free"
        assert "REGRESSION" in render_diff(diff)
        # The clean baseline itself carries no warning/critical finding.
        assert not [
            f for f in clean["telemetry"]["findings"]
            if f["severity"] in ("warning", "critical")
        ]
