"""Unit and property tests for the flow-space partitioner.

The two invariants everything else rests on:

1. **Tiling** — partition regions are pairwise disjoint and cover the full
   header space (every packet has exactly one owning authority switch).
2. **Semantics** — looking a packet up inside its partition's clipped rule
   list gives exactly the same policy verdict as the original table.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import assign_partitions, build_partition_rules, partition_policy
from repro.flowspace import (
    Drop,
    Encapsulate,
    Forward,
    Match,
    Rule,
    RuleTable,
    Ternary,
    TWO_FIELD_LAYOUT,
)
from repro.flowspace.rule import RuleKind
from repro.workloads.classbench import generate_classbench
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT

L = TWO_FIELD_LAYOUT


def rule(priority, action=None, **fields):
    return Rule(Match.build(L, **fields), priority, action or Forward("out"))


def small_policy():
    return [
        rule(30, Drop(), f1="0000xxxx", f2="0000xxxx"),
        rule(20, Forward("a"), f1="0000xxxx"),
        rule(10, Forward("b"), f2="0000xxxx"),
        rule(0, Forward("c")),
    ]


def assert_tiling(result, samples=300, seed=0):
    rng = random.Random(seed)
    width = result.layout.width
    for _ in range(samples):
        bits = rng.getrandbits(width)
        owners = [p for p in result.partitions if p.contains_bits(bits)]
        assert len(owners) == 1


def assert_semantics(result, original_rules, samples=300, seed=1):
    table = RuleTable(result.layout, original_rules)
    rng = random.Random(seed)
    width = result.layout.width
    for _ in range(samples):
        bits = rng.getrandbits(width)
        partition = result.find_partition(bits)
        fragment = next(
            (r for r in partition.rules if r.match.matches_bits(bits)), None
        )
        expected = table.lookup_bits(bits)
        if expected is None:
            assert fragment is None
        else:
            assert fragment is not None
            assert fragment.root_origin() is expected


class TestBasics:
    def test_single_partition_is_identity(self):
        rules = small_policy()
        result = partition_policy(rules, L, num_partitions=1)
        assert len(result.partitions) == 1
        assert result.partitions[0].region.is_wildcard()
        assert result.total_entries == len(rules)
        assert result.duplication_overhead == 0

    def test_requested_partition_count(self):
        for k in (2, 3, 5, 8):
            result = partition_policy(small_policy(), L, num_partitions=k)
            assert len(result.partitions) == k

    def test_tiling_small(self):
        result = partition_policy(small_policy(), L, num_partitions=8)
        assert_tiling(result)

    def test_semantics_small(self):
        rules = small_policy()
        result = partition_policy(rules, L, num_partitions=8)
        assert_semantics(result, rules)

    def test_fragments_are_authority_kind(self):
        result = partition_policy(small_policy(), L, num_partitions=4)
        for partition in result.partitions:
            for fragment in partition.rules:
                assert fragment.kind is RuleKind.AUTHORITY
                assert fragment.origin is not None

    def test_priority_order_preserved_in_partition(self):
        result = partition_policy(small_policy(), L, num_partitions=4)
        for partition in result.partitions:
            priorities = [r.priority for r in partition.rules]
            assert priorities == sorted(priorities, reverse=True)

    def test_empty_policy(self):
        result = partition_policy([], L, num_partitions=4)
        assert len(result.partitions) == 4
        assert result.total_entries == 0
        assert result.duplication_factor == 1.0
        assert_tiling(result)

    def test_max_rules_per_partition(self):
        rules = generate_classbench("acl", count=120, seed=2, layout=FIVE_TUPLE_LAYOUT)
        result = partition_policy(
            rules, FIVE_TUPLE_LAYOUT, max_rules_per_partition=40
        )
        # The wildcard default rule duplicates everywhere, so leaves can
        # never exceed the budget only if splittable; verify best effort.
        for partition in result.partitions:
            assert partition.entry_count <= 40 or not _splittable(partition)

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            partition_policy(small_policy(), L)
        with pytest.raises(ValueError):
            partition_policy(small_policy(), L, num_partitions=0)
        with pytest.raises(ValueError):
            partition_policy(small_policy(), L, num_partitions=2, cut_strategy="bogus")

    def test_layout_mismatch_rejected(self):
        foreign = generate_classbench("acl", count=5, layout=FIVE_TUPLE_LAYOUT)
        with pytest.raises(ValueError):
            partition_policy(foreign, L, num_partitions=2)

    def test_deterministic(self):
        rules = generate_classbench("acl", count=100, seed=3, layout=FIVE_TUPLE_LAYOUT)
        a = partition_policy(rules, FIVE_TUPLE_LAYOUT, num_partitions=8)
        b = partition_policy(rules, FIVE_TUPLE_LAYOUT, num_partitions=8)
        assert [p.region for p in a.partitions] == [p.region for p in b.partitions]


def _splittable(partition):
    return any(partition.region.bit(i) == "x" for i in range(partition.region.width))


class TestRealisticPolicies:
    @pytest.mark.parametrize("k", [2, 8, 32])
    def test_classbench_tiling_and_semantics(self, k):
        rules = generate_classbench("acl", count=200, seed=4, layout=FIVE_TUPLE_LAYOUT)
        result = partition_policy(rules, FIVE_TUPLE_LAYOUT, num_partitions=k)
        assert len(result.partitions) == k
        assert_tiling(result, samples=150)
        assert_semantics(result, rules, samples=150)

    def test_duplication_grows_with_k(self):
        rules = generate_classbench("fw", count=200, seed=5, layout=FIVE_TUPLE_LAYOUT)
        totals = [
            partition_policy(rules, FIVE_TUPLE_LAYOUT, num_partitions=k).total_entries
            for k in (1, 4, 16)
        ]
        assert totals[0] <= totals[1] <= totals[2]

    def test_split_aware_beats_occupancy(self):
        rules = generate_classbench("acl", count=300, seed=6, layout=FIVE_TUPLE_LAYOUT)
        aware = partition_policy(
            rules, FIVE_TUPLE_LAYOUT, num_partitions=16, cut_strategy="split-aware"
        )
        naive = partition_policy(
            rules, FIVE_TUPLE_LAYOUT, num_partitions=16, cut_strategy="occupancy"
        )
        assert aware.total_entries <= naive.total_entries

    def test_max_partition_shrinks_with_k(self):
        rules = generate_classbench("acl", count=300, seed=7, layout=FIVE_TUPLE_LAYOUT)
        sizes = [
            partition_policy(rules, FIVE_TUPLE_LAYOUT, num_partitions=k).max_partition_entries
            for k in (1, 8, 64)
        ]
        assert sizes[0] > sizes[1] > sizes[2]


class TestAllowedFields:
    def test_cuts_only_in_allowed_field(self):
        rules = generate_classbench("acl", count=150, seed=8, layout=FIVE_TUPLE_LAYOUT)
        result = partition_policy(
            rules, FIVE_TUPLE_LAYOUT, num_partitions=8, allowed_fields=["nw_dst"]
        )
        offset = FIVE_TUPLE_LAYOUT.offset("nw_dst")
        width = FIVE_TUPLE_LAYOUT.field("nw_dst").width
        for partition in result.partitions:
            region = partition.region
            for position in range(region.width):
                if region.bit(position) != "x":
                    assert offset <= position < offset + width

    def test_single_dimension_preserves_semantics(self):
        rules = generate_classbench("acl", count=150, seed=8, layout=FIVE_TUPLE_LAYOUT)
        result = partition_policy(
            rules, FIVE_TUPLE_LAYOUT, num_partitions=8, allowed_fields=["nw_dst"]
        )
        assert_tiling(result, samples=150)
        assert_semantics(result, rules, samples=150)

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            partition_policy(
                small_policy(), L, num_partitions=2, allowed_fields=["bogus"]
            )

    def test_exhausted_dimension_stops_splitting(self):
        """When the allowed field's bits run out, leaves become final."""
        rules = small_policy()
        result = partition_policy(
            rules, L, num_partitions=1024, allowed_fields=["f1"]
        )
        # f1 has 8 bits: at most 256 leaves are possible.
        assert len(result.partitions) <= 256
        assert_tiling(result, samples=100)


class TestAssignment:
    def make_partitions(self, sizes):
        result = partition_policy(small_policy(), L, num_partitions=len(sizes))
        # Fake the entry counts for balance testing.
        for partition, size in zip(result.partitions, sizes):
            partition.rules = [rule(1) for _ in range(size)]
        return result.partitions

    def test_every_partition_assigned(self):
        partitions = self.make_partitions([5, 3, 2, 1])
        assignment = assign_partitions(partitions, ["a", "b"])
        assert set(assignment) == {p.partition_id for p in partitions}
        assert all(len(owners) == 1 for owners in assignment.values())

    def test_balance(self):
        partitions = self.make_partitions([8, 8, 1, 1])
        assignment = assign_partitions(partitions, ["a", "b"])
        load = {"a": 0, "b": 0}
        for partition in partitions:
            load[assignment[partition.partition_id][0]] += partition.entry_count
        assert abs(load["a"] - load["b"]) <= 2

    def test_replication(self):
        partitions = self.make_partitions([2, 2])
        assignment = assign_partitions(partitions, ["a", "b", "c"], replication=2)
        for owners in assignment.values():
            assert len(owners) == 2
            assert len(set(owners)) == 2

    def test_replication_capped_at_switch_count(self):
        partitions = self.make_partitions([1])
        assignment = assign_partitions(partitions, ["a"], replication=5)
        assert assignment[partitions[0].partition_id] == ["a"]

    def test_no_authorities_rejected(self):
        partitions = self.make_partitions([1])
        with pytest.raises(ValueError):
            assign_partitions(partitions, [])


class TestPartitionRules:
    def test_one_rule_per_partition(self):
        result = partition_policy(small_policy(), L, num_partitions=4)
        assignment = assign_partitions(result.partitions, ["a", "b"])
        rules = build_partition_rules(result.partitions, assignment, L)
        assert len(rules) == 4
        for partition_rule in rules:
            assert partition_rule.kind is RuleKind.PARTITION
            action = partition_rule.actions.actions[0]
            assert isinstance(action, Encapsulate)

    def test_partition_rule_regions_match(self):
        result = partition_policy(small_policy(), L, num_partitions=4)
        assignment = assign_partitions(result.partitions, ["a"])
        rules = build_partition_rules(result.partitions, assignment, L)
        for partition, partition_rule in zip(result.partitions, rules):
            assert partition_rule.match.ternary == partition.region


# ---------------------------------------------------------------------------
# Property tests over random small policies
# ---------------------------------------------------------------------------

ternaries16 = st.builds(
    lambda v, m: Ternary(v & m, m, 16),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
)


@settings(max_examples=40, deadline=None)
@given(
    specs=st.lists(
        st.tuples(ternaries16, st.integers(min_value=0, max_value=9)),
        min_size=1,
        max_size=10,
    ),
    k=st.integers(min_value=1, max_value=6),
    points=st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=5, max_size=20),
)
def test_prop_partition_preserves_semantics(specs, k, points):
    rules = [
        Rule(Match(L, t), prio, Forward(f"p{i}"))
        for i, (t, prio) in enumerate(specs)
    ]
    result = partition_policy(rules, L, num_partitions=k)
    table = RuleTable(L, rules)
    for bits in points:
        owners = [p for p in result.partitions if p.contains_bits(bits)]
        assert len(owners) == 1
        fragment = next(
            (r for r in owners[0].rules if r.match.matches_bits(bits)), None
        )
        expected = table.lookup_bits(bits)
        if expected is None:
            assert fragment is None
        else:
            assert fragment is not None and fragment.root_origin() is expected
