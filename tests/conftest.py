"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.flowspace import (
    Drop,
    FIVE_TUPLE_LAYOUT,
    Forward,
    Match,
    Rule,
    RuleTable,
    TWO_FIELD_LAYOUT,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current run instead "
             "of diffing against them",
    )


@pytest.fixture
def update_goldens(request):
    """True when the run should rewrite the golden metrics documents."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng():
    """A deterministic RNG."""
    return random.Random(0xD1FA9E)


@pytest.fixture
def two_field_layout():
    return TWO_FIELD_LAYOUT


@pytest.fixture
def five_tuple_layout():
    return FIVE_TUPLE_LAYOUT


def make_rule(layout, priority, action=None, **fields):
    """Helper: build a rule over ``layout`` from field patterns."""
    return Rule(
        Match.build(layout, **fields),
        priority,
        action if action is not None else Forward("out"),
    )


@pytest.fixture
def overlapping_table(two_field_layout):
    """A small table with a classic dependency chain:

    priority 30: f1=0000 xxxx, f2=0000 xxxx  -> drop      (narrow deny)
    priority 20: f1=0000 xxxx                -> fwd(a)    (mid)
    priority 10: f2=0000 xxxx                -> fwd(b)    (mid, overlaps 20)
    priority  0: *                           -> fwd(c)    (default)
    """
    rules = [
        make_rule(two_field_layout, 30, Drop(), f1="0000xxxx", f2="0000xxxx"),
        make_rule(two_field_layout, 20, Forward("a"), f1="0000xxxx"),
        make_rule(two_field_layout, 10, Forward("b"), f2="0000xxxx"),
        make_rule(two_field_layout, 0, Forward("c")),
    ]
    return RuleTable(two_field_layout, rules)
