"""Unit tests for the DIFANE pipeline and counter aggregation."""

import pytest

from repro.flowspace import (
    Drop,
    Encapsulate,
    Forward,
    Match,
    Packet,
    Rule,
    TWO_FIELD_LAYOUT,
)
from repro.flowspace.rule import RuleKind
from repro.switch import DifanePipeline, aggregate_counters
from repro.switch.pipeline import PipelineStage

L = TWO_FIELD_LAYOUT


def rule(kind, priority=1, action=None, **fields):
    return Rule(Match.build(L, **fields), priority, action or Forward("x"), kind=kind)


class TestPipelineStages:
    def build(self):
        pipe = DifanePipeline(L)
        pipe.install(rule(RuleKind.CACHE, priority=5, f1=1))
        pipe.install(rule(RuleKind.AUTHORITY, priority=5, f1=2))
        pipe.install(rule(RuleKind.PARTITION, priority=0, action=Encapsulate("auth")))
        return pipe

    def test_cache_stage_first(self):
        pipe = self.build()
        result = pipe.lookup(Packet.from_fields(L, f1=1))
        assert result.stage is PipelineStage.CACHE
        assert not result.is_miss

    def test_authority_stage_second(self):
        pipe = self.build()
        result = pipe.lookup(Packet.from_fields(L, f1=2))
        assert result.stage is PipelineStage.AUTHORITY

    def test_partition_stage_catches_rest(self):
        pipe = self.build()
        result = pipe.lookup(Packet.from_fields(L, f1=99))
        assert result.stage is PipelineStage.PARTITION

    def test_cache_shadows_authority(self):
        """Stage order dominates priority: a low-priority cache rule beats a
        high-priority authority rule — the banded-TCAM arrangement."""
        pipe = DifanePipeline(L)
        cache = rule(RuleKind.CACHE, priority=1, f1=7)
        auth = rule(RuleKind.AUTHORITY, priority=99, f1=7)
        pipe.install(cache)
        pipe.install(auth)
        result = pipe.lookup(Packet.from_fields(L, f1=7))
        assert result.rule is cache

    def test_total_miss(self):
        pipe = DifanePipeline(L)
        result = pipe.lookup(Packet.from_fields(L))
        assert result.is_miss
        assert result.stage is PipelineStage.MISS
        assert pipe.misses == 1

    def test_install_rejects_other_kinds(self):
        pipe = DifanePipeline(L)
        with pytest.raises(ValueError):
            pipe.install(rule(RuleKind.POLICY))

    def test_capacities_apply_per_region(self):
        from repro.switch import TcamFullError
        pipe = DifanePipeline(L, cache_capacity=1)
        pipe.install(rule(RuleKind.CACHE, f1=1))
        with pytest.raises(TcamFullError):
            pipe.install(rule(RuleKind.CACHE, f1=2))
        # Authority region is unaffected.
        pipe.install(rule(RuleKind.AUTHORITY, f1=3))
        assert pipe.total_entries() == 2


class TestCounterAggregation:
    def test_fold_to_origin(self):
        policy = Rule(Match.any(L), 9, Forward("a"))
        frag1 = policy.derive(kind=RuleKind.AUTHORITY)
        frag2 = frag1.derive(kind=RuleKind.CACHE)
        packet = Packet.from_fields(L)
        packet.size_bytes = 100
        frag1.record_hit(packet)
        frag2.record_hit(packet)
        frag2.record_hit(packet)
        policy.record_hit(packet)
        totals = aggregate_counters([policy, frag1, frag2])
        assert set(totals) == {policy}
        snapshot = totals[policy]
        assert snapshot.packets == 4
        assert snapshot.bytes == 400
        assert snapshot.fragments == 3

    def test_independent_origins_stay_separate(self):
        a = Rule(Match.any(L), 1, Forward("a"))
        b = Rule(Match.any(L), 2, Forward("b"))
        totals = aggregate_counters([a, b, a.derive()])
        assert set(totals) == {a, b}
        assert totals[a].fragments == 2
