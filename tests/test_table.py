"""Unit and property tests for RuleTable."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowspace import (
    Drop,
    Forward,
    Match,
    Packet,
    Rule,
    RuleTable,
    Ternary,
    TWO_FIELD_LAYOUT,
)

L = TWO_FIELD_LAYOUT


def rule(priority, action=None, **fields):
    return Rule(Match.build(L, **fields), priority, action or Forward("out"))


class TestOrdering:
    def test_priority_order(self):
        low = rule(1, Forward("low"))
        high = rule(9, Forward("high"))
        table = RuleTable(L, [low, high])
        assert list(table.rules) == [high, low]

    def test_tie_break_is_insertion_order(self):
        first = rule(5, Forward("first"))
        second = rule(5, Forward("second"))
        table = RuleTable(L, [first, second])
        assert list(table.rules) == [first, second]

    def test_incremental_add_keeps_order(self):
        table = RuleTable(L)
        r5, r7, r3 = rule(5), rule(7), rule(3)
        for r in (r5, r7, r3):
            table.add(r)
        assert [r.priority for r in table.rules] == [7, 5, 3]

    def test_layout_mismatch_rejected(self):
        from repro.flowspace import FIVE_TUPLE_LAYOUT
        table = RuleTable(L)
        foreign = Rule(Match.any(FIVE_TUPLE_LAYOUT), 1, Drop())
        with pytest.raises(ValueError):
            table.add(foreign)


class TestLookup:
    def test_highest_priority_wins(self, overlapping_table):
        p = Packet.from_fields(L, f1=1, f2=1)  # in the deny's region
        winner = overlapping_table.lookup(p)
        assert winner.priority == 30

    def test_mid_rules(self, overlapping_table):
        assert overlapping_table.lookup(
            Packet.from_fields(L, f1=1, f2=200)
        ).priority == 20
        assert overlapping_table.lookup(
            Packet.from_fields(L, f1=200, f2=1)
        ).priority == 10

    def test_default(self, overlapping_table):
        assert overlapping_table.lookup(
            Packet.from_fields(L, f1=200, f2=200)
        ).priority == 0

    def test_empty_table_returns_none(self):
        assert RuleTable(L).lookup(Packet.from_fields(L)) is None

    def test_classify_updates_counters(self, overlapping_table):
        p = Packet.from_fields(L, f1=1, f2=1)
        winner = overlapping_table.classify(p)
        assert winner.packet_count == 1


class TestMutation:
    def test_remove_by_identity(self):
        a, b = rule(5), rule(5)
        table = RuleTable(L, [a, b])
        assert table.remove(a)
        assert list(table.rules) == [b]
        assert not table.remove(a)

    def test_remove_if(self):
        rules = [rule(p) for p in range(6)]
        table = RuleTable(L, rules)
        removed = table.remove_if(lambda r: r.priority % 2 == 0)
        assert len(removed) == 3
        assert all(r.priority % 2 == 1 for r in table)

    def test_clear(self):
        table = RuleTable(L, [rule(1), rule(2)])
        table.clear()
        assert len(table) == 0

    def test_contains_identity(self):
        a = rule(1)
        table = RuleTable(L, [a])
        assert a in table
        assert rule(1) not in table


class TestAnalysis:
    def test_dependencies_of(self, overlapping_table):
        rules = list(overlapping_table.rules)
        default = rules[-1]
        deps = overlapping_table.dependencies_of(default)
        assert set(deps) == set(rules[:-1])
        top = rules[0]
        assert overlapping_table.dependencies_of(top) == []

    def test_shadowed_rule_detected(self):
        wide = rule(10, Forward("w"), f1="0000xxxx")
        hidden = rule(5, Forward("h"), f1="00001xxx")
        table = RuleTable(L, [wide, hidden])
        assert table.shadowed_rules() == [hidden]

    def test_shadow_by_union(self):
        # Two half-covers jointly shadow a third rule.
        left = rule(10, Forward("l"), f1="0xxxxxxx")
        right = rule(9, Forward("r"), f1="1xxxxxxx")
        below = rule(1, Forward("b"))
        table = RuleTable(L, [left, right, below])
        assert table.shadowed_rules() == [below]

    def test_no_false_shadows(self, overlapping_table):
        assert overlapping_table.shadowed_rules() == []

    def test_uncovered_region_semantics(self, overlapping_table):
        rules = list(overlapping_table.rules)
        mid = rules[1]  # priority 20
        region = overlapping_table.uncovered_region(mid)
        rng = random.Random(0)
        for _ in range(100):
            bits = rng.getrandbits(16)
            wins = overlapping_table.lookup_bits(bits) is mid
            assert region.contains_bits(bits) == wins

    def test_semantically_equal_self(self, overlapping_table):
        rng = random.Random(0)
        ok, counterexample = overlapping_table.semantically_equal(
            overlapping_table.lookup_bits, rng
        )
        assert ok
        assert counterexample is None

    def test_semantically_equal_detects_difference(self, overlapping_table):
        other = RuleTable(L, [rule(1, Drop())])
        rng = random.Random(0)
        ok, counterexample = other.semantically_equal(
            overlapping_table.lookup_bits, rng, samples=100
        )
        assert not ok
        assert counterexample is not None


# ---------------------------------------------------------------------------
# Property: table lookup == naive max-priority scan
# ---------------------------------------------------------------------------

small_ternaries = st.builds(
    lambda v, m: Ternary(v & m, m, 16),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
)


@settings(max_examples=100)
@given(
    specs=st.lists(
        st.tuples(small_ternaries, st.integers(min_value=0, max_value=7)),
        min_size=1,
        max_size=12,
    ),
    point=st.integers(min_value=0, max_value=0xFFFF),
)
def test_prop_lookup_matches_naive_scan(specs, point):
    rules = [Rule(Match(L, t), prio, Forward(f"p{i}")) for i, (t, prio) in enumerate(specs)]
    table = RuleTable(L, rules)
    winner = table.lookup_bits(point)
    matching = [r for r in rules if r.match.matches_bits(point)]
    if not matching:
        assert winner is None
    else:
        best = max(matching, key=lambda r: r.priority)
        # Among equal priorities, first inserted wins.
        assert winner.priority == best.priority
        firsts = [r for r in matching if r.priority == best.priority]
        assert winner is firsts[0]
