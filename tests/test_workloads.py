"""Tests for workload generation: Zipf, ClassBench, policies, traffic, traces."""

import math
import random

import pytest

from repro.flowspace import Drop, Forward, RuleTable, FIVE_TUPLE_LAYOUT
from repro.net import TopologyBuilder
from repro.workloads import (
    Trace,
    ZipfSampler,
    campus_policy,
    generate_classbench,
    packet_sequence,
    routing_policy_for_topology,
    vpn_policy,
)
from repro.workloads.traffic import (
    flow_headers_for_policy,
    host_pair_packets,
    poisson_arrivals,
)

L = FIVE_TUPLE_LAYOUT


class TestZipf:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, alpha=1.0)
        total = sum(sampler.probability(r) for r in range(100))
        assert total == pytest.approx(1.0)

    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(100, alpha=1.0)
        assert sampler.probability(0) > sampler.probability(50)

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0)
        probs = [sampler.probability(r) for r in range(10)]
        assert all(p == pytest.approx(0.1) for p in probs)

    def test_sample_distribution_skews(self):
        sampler = ZipfSampler(1000, alpha=1.2, seed=1)
        draws = sampler.sample_many(5000)
        head = sum(1 for d in draws if d < 10)
        assert head / len(draws) > 0.3

    def test_deterministic_by_seed(self):
        a = ZipfSampler(50, alpha=1.0, seed=7).sample_many(100)
        b = ZipfSampler(50, alpha=1.0, seed=7).sample_many(100)
        assert a == b

    def test_shuffle_decorrelates_rank(self):
        plain = ZipfSampler(100, alpha=1.5, seed=3, shuffle=False)
        assert plain.sample_many(50).count(0) > 0
        shuffled = ZipfSampler(100, alpha=1.5, seed=3, shuffle=True)
        # Sampling still works and stays in range.
        assert all(0 <= i < 100 for i in shuffled.sample_many(50))

    def test_head_mass(self):
        sampler = ZipfSampler(100, alpha=1.0)
        assert sampler.head_mass(100) == pytest.approx(1.0)
        assert 0 < sampler.head_mass(1) < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, alpha=-1)
        with pytest.raises(IndexError):
            ZipfSampler(5).probability(5)


class TestClassBench:
    def test_requested_size(self):
        for count in (10, 100, 500):
            rules = generate_classbench("acl", count=count, seed=0)
            assert len(rules) == count

    def test_default_rule_is_catch_all(self):
        rules = generate_classbench("acl", count=50, seed=0)
        assert rules[-1].match.ternary.is_wildcard()
        assert rules[-1].priority == 0

    def test_deterministic(self):
        a = generate_classbench("fw", count=100, seed=5)
        b = generate_classbench("fw", count=100, seed=5)
        assert [r.match.ternary for r in a] == [r.match.ternary for r in b]

    def test_seeds_differ(self):
        a = generate_classbench("acl", count=100, seed=1)
        b = generate_classbench("acl", count=100, seed=2)
        assert [r.match.ternary for r in a] != [r.match.ternary for r in b]

    def test_profiles_differ(self):
        acl = generate_classbench("acl", count=200, seed=3)
        ipc = generate_classbench("ipc", count=200, seed=3)
        avg_wild = lambda rules: sum(
            r.match.ternary.wildcard_bits() for r in rules
        ) / len(rules)
        # IPC rules are much more specific than ACL rules.
        assert avg_wild(ipc) < avg_wild(acl)

    def test_priorities_non_increasing(self):
        rules = generate_classbench("acl", count=100, seed=4)
        priorities = [r.priority for r in rules]
        assert priorities == sorted(priorities, reverse=True)

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            generate_classbench("bogus")

    def test_overlap_structure_exists(self):
        """Prefix reuse must create real dependency chains."""
        rules = generate_classbench("acl", count=200, seed=6)
        depths = []
        for i, rule in enumerate(rules):
            depths.append(
                sum(1 for other in rules[:i] if other.match.intersects(rule.match))
            )
        average = sum(depths) / len(depths)
        assert average > 1.0  # real overlap, not a disjoint ruleset
        assert max(depths) >= 10  # at least one long chain

    def test_mix_of_actions(self):
        rules = generate_classbench("fw", count=300, seed=7)
        denies = sum(1 for r in rules if any(isinstance(a, Drop) for a in r.actions))
        assert 0 < denies < len(rules)


class TestPolicies:
    def test_campus_size_formula(self):
        rules = campus_policy(departments=4, subnets_per_department=3,
                              acl_rules_per_department=5)
        assert len(rules) == 4 * (5 + 3) + 1

    def test_campus_default_deny_last(self):
        rules = campus_policy(departments=2)
        assert rules[-1].match.ternary.is_wildcard()
        assert rules[-1].actions.is_drop

    def test_vpn_size(self):
        rules = vpn_policy(customers=5, sites_per_customer=3)
        assert len(rules) == 5 * 9 + 1

    def test_vpn_customers_disjoint(self):
        rules = vpn_policy(customers=4, sites_per_customer=2)
        # Site rules of different customers never overlap.
        c0 = rules[0]
        c_last = rules[-2]
        assert not c0.match.intersects(c_last.match)

    def test_routing_policy_covers_hosts(self):
        topo = TopologyBuilder.linear(2, hosts_per_switch=2)
        rules, host_ips = routing_policy_for_topology(topo, L)
        assert set(host_ips) == set(topo.hosts())
        table = RuleTable(L, rules)
        for host, ip in host_ips.items():
            bits = L.pack_values(nw_dst=ip)
            winner = table.lookup_bits(bits)
            forward = winner.actions.final_forward()
            assert forward is not None and forward.port == host

    def test_routing_policy_acl_layered_on_top(self):
        topo = TopologyBuilder.linear(2, hosts_per_switch=1)
        rules, host_ips = routing_policy_for_topology(topo, L, acl_rules=5, seed=1)
        assert len(rules) == 5 + 2 + 1
        assert all(r.actions.is_drop for r in rules[:5])

    def test_routing_policy_needs_hosts(self):
        topo = TopologyBuilder.linear(2, hosts_per_switch=0)
        with pytest.raises(ValueError):
            routing_policy_for_topology(topo, L)


class TestTraffic:
    def test_flow_headers_match_policy(self):
        policy = generate_classbench("acl", count=50, seed=8)
        table = RuleTable(L, policy)
        headers = flow_headers_for_policy(policy, 100, seed=0)
        assert len(headers) == 100
        matched = sum(1 for h in headers if table.lookup_bits(h) is not None)
        assert matched == 100  # policy has a catch-all

    def test_packet_sequence_popularity(self):
        flows = list(range(100))
        seq = packet_sequence(flows, 5000, alpha=1.3, seed=1)
        counts = {}
        for f in seq:
            counts[f] = counts.get(f, 0) + 1
        top = max(counts.values())
        assert top > 5000 / 100 * 3  # clearly non-uniform

    def test_packet_sequence_deterministic(self):
        flows = list(range(10))
        assert packet_sequence(flows, 100, seed=2) == packet_sequence(flows, 100, seed=2)

    def test_poisson_arrivals_rate(self):
        times = poisson_arrivals(1000.0, 2.0, seed=3)
        assert 1600 < len(times) < 2400
        assert all(0 <= t < 2.0 for t in times)
        assert times == sorted(times)

    def test_host_pair_packets(self):
        topo = TopologyBuilder.linear(3, hosts_per_switch=1)
        _, host_ips = routing_policy_for_topology(topo, L)
        timed = host_pair_packets(topo, host_ips, L, count=20, rate=100.0,
                                  seed=4, flow_packets=2)
        assert len(timed) == 40
        for tp in timed:
            assert tp.packet.field("nw_dst") in host_ips.values()
            assert tp.source_host in host_ips

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ValueError):
            packet_sequence([], 10)
        with pytest.raises(ValueError):
            flow_headers_for_policy([], 10)


class TestTrace:
    def test_from_headers_round_trip(self, tmp_path):
        headers = [random.Random(0).getrandbits(104) for _ in range(50)]
        trace = Trace.from_headers(headers, rate=1000.0, layout_width=104)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.header_sequence() == headers
        assert loaded.layout_width == 104
        assert len(loaded) == 50

    def test_from_events_sorts(self):
        trace = Trace.from_events([(2.0, 1, 64), (1.0, 2, 64)], layout_width=16)
        assert list(trace.times) == [1.0, 2.0]
        assert trace.headers == [2, 1]

    def test_duration(self):
        trace = Trace.from_headers([1, 2, 3, 4], rate=2.0, layout_width=16)
        assert trace.duration() == pytest.approx(1.5)

    def test_replay_invokes_send(self):
        trace = Trace.from_headers([1, 2, 3], rate=10.0, layout_width=L.width)
        sent = []
        count = trace.replay(L, lambda t, p: sent.append((t, p.header_bits)))
        assert count == 3
        assert [bits for _, bits in sent] == [1, 2, 3]

    def test_replay_layout_mismatch(self):
        from repro.flowspace import TWO_FIELD_LAYOUT
        trace = Trace.from_headers([1], rate=1.0, layout_width=104)
        with pytest.raises(ValueError):
            trace.replay(TWO_FIELD_LAYOUT, lambda t, p: None)

    def test_column_validation(self):
        import numpy as np
        with pytest.raises(ValueError):
            Trace(times=np.array([1.0]), headers=[1, 2], sizes=np.array([64]),
                  layout_width=16)
        with pytest.raises(ValueError):
            Trace(times=np.array([2.0, 1.0]), headers=[1, 2],
                  sizes=np.array([64, 64]), layout_width=16)
