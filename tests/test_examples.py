"""Smoke tests: every shipped example must run to completion.

Each example's ``main()`` is imported and executed (stdout captured by
pytest); assertions are on completion and on a couple of load-bearing
lines so a silently-broken example can't slip through.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "cache hit rate" in out
        assert "always 0 in DIFANE" in out

    def test_acl_offload(self, capsys):
        load_example("acl_offload").main()
        out = capsys.readouterr().out
        assert "Partitioning" in out
        assert "wildcard" in out.lower()

    def test_campus_failover(self, capsys):
        load_example("campus_failover").main()
        out = capsys.readouterr().out
        assert "authority failure" in out.lower() or "failover" in out.lower()
        assert "dropped=0" in out

    def test_reactive_vs_difane(self, capsys):
        load_example("reactive_vs_difane").main()
        out = capsys.readouterr().out
        assert "DIFANE" in out and "NOX" in out
        assert "summary:" in out

    def test_trace_replay(self, capsys):
        load_example("trace_replay").main()
        out = capsys.readouterr().out
        assert "Trace-driven cache replay" in out
        assert "live replay" in out

    def test_openflow_frontend(self, capsys):
        load_example("openflow_frontend").main()
        out = capsys.readouterr().out
        assert "StatsReply" in out
        assert "0 errors" in out

    def test_every_example_has_a_test(self):
        """Adding an example without a smoke test should fail loudly."""
        scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        tested = {
            name[len("test_"):] for name in dir(TestExamplesRun)
            if name.startswith("test_") and name != "test_every_example_has_a_test"
        }
        assert scripts == tested
