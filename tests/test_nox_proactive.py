"""Behavioural tests for the NOX and proactive baselines."""

import pytest

from repro.baselines import NoxNetwork, ProactiveNetwork
from repro.flowspace import FIVE_TUPLE_LAYOUT, Packet
from repro.net import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def build_nox(**kwargs):
    topo = TopologyBuilder.linear(3, hosts_per_switch=1)
    rules, host_ips = routing_policy_for_topology(topo, L)
    nn = NoxNetwork.build(topo, rules, L, **kwargs)
    return nn, topo, host_ips


def flow_packet(host_ips, dst="h2", sport=2000):
    return Packet.from_fields(
        L, nw_src=0x0A0A0A0A, nw_dst=host_ips[dst], nw_proto=6,
        tp_src=sport, tp_dst=80,
    )


class TestNoxBasics:
    def test_first_packet_via_controller(self):
        nn, topo, host_ips = build_nox()
        nn.send("h0", flow_packet(host_ips))
        nn.run()
        delivered = nn.network.delivered()
        assert len(delivered) == 1
        assert delivered[0].via_controller
        assert nn.controller.flow_setups == 1

    def test_microflow_installed(self):
        nn, topo, host_ips = build_nox()
        nn.send("h0", flow_packet(host_ips))
        nn.run()
        assert len(nn.switch("s0").flow_table) == 1

    def test_second_packet_hits_flow_table(self):
        nn, topo, host_ips = build_nox()
        nn.send("h0", flow_packet(host_ips, sport=2000))
        nn.run()
        nn.send("h0", flow_packet(host_ips, sport=2000))
        nn.run()
        assert nn.switch("s0").flow_hits == 1
        assert nn.controller.flow_setups == 1
        second = nn.network.delivered()[1]
        assert not second.via_controller

    def test_microflow_does_not_cover_siblings(self):
        """Unlike DIFANE's wildcard cache, a different microflow to the
        same destination punts again — the contrast experiment E7 measures."""
        nn, topo, host_ips = build_nox()
        nn.send("h0", flow_packet(host_ips, sport=2000))
        nn.run()
        nn.send("h0", flow_packet(host_ips, sport=3000))
        nn.run()
        assert nn.controller.flow_setups == 2

    def test_first_packet_pays_control_rtt(self):
        nn, topo, host_ips = build_nox(control_latency_s=3e-3)
        nn.send("h0", flow_packet(host_ips))
        nn.run()
        assert nn.network.delivered()[0].delay >= 6e-3

    def test_policy_miss_dropped(self):
        nn, topo, host_ips = build_nox()
        packet = Packet.from_fields(L, nw_dst=0x01020304, nw_proto=6)
        nn.send("h0", packet)
        nn.run()
        dropped = nn.network.dropped()
        assert len(dropped) == 1
        assert dropped[0].drop_reason == "policy drop"  # default deny rule


class TestNoxOverload:
    def test_controller_saturation_drops_flows(self):
        nn, topo, host_ips = build_nox(controller_rate=100.0, controller_queue=5)
        for sport in range(2000, 2100):
            nn.send_at(sport * 1e-5, "h0", flow_packet(host_ips, sport=sport))
        nn.run()
        assert nn.controller.messages_dropped > 0
        reasons = {r.drop_reason for r in nn.network.dropped()}
        assert "controller overloaded" in reasons

    def test_flow_table_capacity_lru(self):
        nn, topo, host_ips = build_nox(flow_table_capacity=2)
        for sport in (2000, 2001, 2002):
            nn.send("h0", flow_packet(host_ips, sport=sport))
            nn.run()
        switch = nn.switch("s0")
        assert len(switch.flow_table) == 2
        assert switch.table_evictions == 1


class TestProactive:
    def test_full_policy_everywhere(self):
        topo = TopologyBuilder.linear(3, hosts_per_switch=1)
        rules, host_ips = routing_policy_for_topology(topo, L)
        pn = ProactiveNetwork.build(topo, rules, L)
        for switch in pn.switches():
            assert switch.tcam_footprint == len(rules)

    def test_delivery_without_any_detour(self):
        topo = TopologyBuilder.linear(3, hosts_per_switch=1)
        rules, host_ips = routing_policy_for_topology(topo, L)
        pn = ProactiveNetwork.build(topo, rules, L)
        pn.send("h0", flow_packet(host_ips))
        pn.run()
        record = pn.network.delivered()[0]
        assert record.endpoint == "h2"
        assert not record.via_authority
        assert not record.via_controller

    def test_counters_preserved_per_switch(self):
        topo = TopologyBuilder.linear(2, hosts_per_switch=1)
        rules, host_ips = routing_policy_for_topology(topo, L)
        pn = ProactiveNetwork.build(topo, rules, L)
        pn.send("h0", flow_packet(host_ips, dst="h1"))
        pn.run()
        assert pn.switches()[0].policy_hits == 1
