"""Unit tests for authority-switch placement."""

import pytest

from repro.core import choose_authority_switches
from repro.net import TopologyBuilder


@pytest.fixture
def star():
    return TopologyBuilder.star(6, hosts_per_leaf=1)


class TestStrategies:
    def test_degree_picks_hub(self, star):
        chosen = choose_authority_switches(star, 1, strategy="degree")
        assert chosen == ["hub"]

    def test_central_picks_hub(self, star):
        chosen = choose_authority_switches(star, 1, strategy="central")
        assert chosen == ["hub"]

    def test_random_deterministic_by_seed(self, star):
        a = choose_authority_switches(star, 3, strategy="random", seed=2)
        b = choose_authority_switches(star, 3, strategy="random", seed=2)
        assert a == b
        assert len(set(a)) == 3

    def test_random_varies_with_seed(self, star):
        samples = {
            tuple(choose_authority_switches(star, 3, strategy="random", seed=s))
            for s in range(8)
        }
        assert len(samples) > 1

    def test_spread_maximizes_distance(self):
        topo = TopologyBuilder.linear(7)
        chosen = choose_authority_switches(topo, 2, strategy="spread")
        # The two chosen switches should include an endpoint pair far apart.
        assert "s3" in chosen  # the most central first pick
        assert "s0" in chosen or "s6" in chosen

    def test_requested_count_returned(self, star):
        for strategy in ("random", "degree", "central", "spread"):
            chosen = choose_authority_switches(star, 4, strategy=strategy)
            assert len(chosen) == 4
            assert len(set(chosen)) == 4

    def test_count_validation(self, star):
        with pytest.raises(ValueError):
            choose_authority_switches(star, 0)
        with pytest.raises(ValueError):
            choose_authority_switches(star, 100)

    def test_unknown_strategy(self, star):
        with pytest.raises(ValueError):
            choose_authority_switches(star, 1, strategy="bogus")

    def test_only_switches_chosen(self, star):
        chosen = choose_authority_switches(star, 5, strategy="random", seed=0)
        hosts = set(star.hosts())
        assert not hosts.intersection(chosen)
