"""Stateful property test: DIFANE under arbitrary operation interleavings.

Hypothesis drives a random sequence of policy inserts, deletes, host
moves and packets against a live DIFANE deployment; after every packet
the observed outcome (delivered endpoint / policy drop) must match a
single-table oracle maintained in parallel.  This is the correctness
contract under *composition* of dynamics, which individual tests can't
cover exhaustively.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule

from repro.core import DifaneNetwork
from repro.flowspace import (
    Drop,
    FIVE_TUPLE_LAYOUT,
    Match,
    Packet,
    Rule,
    RuleTable,
    Ternary,
)
from repro.net import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


class DifaneMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.topo = TopologyBuilder.linear(3, hosts_per_switch=2)
        self.base_rules, self.host_ips = routing_policy_for_topology(self.topo, L)
        self.dn = DifaneNetwork.build(
            self.topo, self.base_rules, L,
            authority_switches=["s0", "s2"],
            partitions_per_authority=2,
            cache_capacity=32,
            redirect_rate=None,
        )
        self.inserted = []
        self.hosts = sorted(self.host_ips)

    # -- operations --------------------------------------------------------
    @rule(
        host_index=st.integers(min_value=0, max_value=5),
        port=st.sampled_from([22, 80, 443]),
        priority=st.integers(min_value=1, max_value=100_000),
    )
    def insert_block(self, host_index, port, priority):
        host = self.hosts[host_index % len(self.hosts)]
        block = Rule(
            Match.build(
                L,
                nw_dst=Ternary.exact(self.host_ips[host], 32),
                nw_proto=Ternary.exact(6, 8),
                tp_dst=Ternary.exact(port, 16),
            ),
            priority=priority,
            actions=Drop(),
        )
        self.dn.controller.insert_rule(block)
        self.inserted.append(block)

    @precondition(lambda self: self.inserted)
    @rule(index=st.integers(min_value=0, max_value=30))
    def delete_inserted(self, index):
        victim = self.inserted.pop(index % len(self.inserted))
        self.dn.controller.delete_rule(victim)

    @rule(
        host_index=st.integers(min_value=0, max_value=5),
        switch_index=st.integers(min_value=0, max_value=2),
    )
    def move_host(self, host_index, switch_index):
        host = self.hosts[host_index % len(self.hosts)]
        new_home = f"s{switch_index}"
        if self.topo.host_attachment(host) != new_home:
            self.dn.controller.handle_host_move(host, new_home)

    @rule(
        src_index=st.integers(min_value=0, max_value=5),
        dst_index=st.integers(min_value=0, max_value=5),
        port=st.sampled_from([22, 80, 443, 8080]),
        sport=st.integers(min_value=1024, max_value=65535),
    )
    def send_packet(self, src_index, dst_index, port, sport):
        src = self.hosts[src_index % len(self.hosts)]
        dst = self.hosts[dst_index % len(self.hosts)]
        if src == dst:
            return
        fields = dict(
            nw_src=self.host_ips[src], nw_dst=self.host_ips[dst],
            nw_proto=6, tp_src=sport, tp_dst=port,
        )
        oracle = RuleTable(L, self.dn.controller.policy)
        expected = oracle.lookup(Packet.from_fields(L, **fields))
        packet = Packet.from_fields(L, **fields)
        self.dn.send(src, packet)
        self.dn.run()
        record = self.dn.network.deliveries[-1]
        if expected is None or expected.actions.is_drop:
            assert not record.delivered, (
                f"expected drop, delivered to {record.endpoint}"
            )
            assert record.drop_reason == "policy drop"
        else:
            target = expected.actions.final_forward().port
            assert record.delivered, (
                f"expected delivery to {target}, dropped: {record.drop_reason}"
            )
            assert record.endpoint == target

    # -- global invariants -----------------------------------------------------
    @invariant()
    def partition_tables_consistent(self):
        """Every switch holds exactly one partition rule per partition."""
        k = len(self.dn.controller.partitions())
        for switch in self.dn.switches():
            assert len(switch.pipeline.partition) == k


DifaneMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestDifaneStateful = DifaneMachine.TestCase
