"""Unit and property tests for the ternary match primitive."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowspace import Ternary


def ternaries(width=8):
    """Hypothesis strategy: random ternaries of ``width``."""
    return st.builds(
        lambda v, m: Ternary(v & m, m, width),
        st.integers(min_value=0, max_value=(1 << width) - 1),
        st.integers(min_value=0, max_value=(1 << width) - 1),
    )


def points(width=8):
    return st.integers(min_value=0, max_value=(1 << width) - 1)


class TestConstruction:
    def test_from_string_round_trip(self):
        for text in ("01x", "xxxx", "1111", "x0x1"):
            assert str(Ternary.from_string(text)) == text

    def test_from_string_star_alias(self):
        assert Ternary.from_string("1*0") == Ternary.from_string("1x0")

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Ternary.from_string("102")

    def test_wildcard(self):
        t = Ternary.wildcard(8)
        assert t.is_wildcard()
        assert t.size() == 256

    def test_exact(self):
        t = Ternary.exact(0xAB, 8)
        assert t.is_exact()
        assert t.size() == 1
        assert t.matches(0xAB)
        assert not t.matches(0xAA)

    def test_from_prefix(self):
        t = Ternary.from_prefix(0b10100000, 3, 8)
        assert str(t) == "101xxxxx"

    def test_from_prefix_zero_length(self):
        assert Ternary.from_prefix(0xFF, 0, 8).is_wildcard()

    def test_value_normalized_under_mask(self):
        # Bits outside the mask are dropped so equal matches compare equal.
        assert Ternary(0b1111, 0b1100, 4) == Ternary(0b1100, 0b1100, 4)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Ternary(0, 1 << 8, 8)
        with pytest.raises(ValueError):
            Ternary(1 << 8, 0, 8)
        with pytest.raises(ValueError):
            Ternary(0, 0, -1)

    def test_immutable(self):
        t = Ternary.wildcard(4)
        with pytest.raises(AttributeError):
            t.mask = 1


class TestPredicates:
    def test_counts(self):
        t = Ternary.from_string("1x0x")
        assert t.cared_bits() == 2
        assert t.wildcard_bits() == 2
        assert t.size() == 4

    def test_matches_enumeration_consistent(self):
        t = Ternary.from_string("x1x0")
        matched = {bits for bits in range(16) if t.matches(bits)}
        assert matched == set(t.enumerate())

    def test_enumerate_limit(self):
        t = Ternary.wildcard(8)
        assert len(list(t.enumerate(limit=10))) == 10

    def test_bit_accessor(self):
        t = Ternary.from_string("10x")
        assert t.bit(0) == "x"
        assert t.bit(1) == "0"
        assert t.bit(2) == "1"
        with pytest.raises(IndexError):
            t.bit(3)

    def test_with_bit(self):
        t = Ternary.from_string("xxx")
        assert str(t.with_bit(2, "1")) == "1xx"
        assert str(t.with_bit(0, "0")) == "xx0"
        assert str(t.with_bit(1, "x")) == "xxx"
        with pytest.raises(ValueError):
            t.with_bit(0, "q")


class TestRelations:
    def test_intersects_agreeing(self):
        a = Ternary.from_string("1x")
        b = Ternary.from_string("x0")
        assert a.intersects(b)
        assert a.intersection(b) == Ternary.from_string("10")

    def test_disjoint(self):
        a = Ternary.from_string("1x")
        b = Ternary.from_string("0x")
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_covers(self):
        outer = Ternary.from_string("1xxx")
        inner = Ternary.from_string("10x1")
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_covers_self(self):
        t = Ternary.from_string("1x0x")
        assert t.covers(t)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            Ternary.wildcard(4).intersects(Ternary.wildcard(8))


class TestSubtract:
    def test_disjoint_returns_self(self):
        a = Ternary.from_string("1x")
        b = Ternary.from_string("0x")
        assert a.subtract(b) == [a]

    def test_covered_returns_empty(self):
        a = Ternary.from_string("10x")
        b = Ternary.from_string("1xx")
        assert a.subtract(b) == []

    def test_known_decomposition(self):
        a = Ternary.from_string("1xxx")
        b = Ternary.from_string("11x1")
        pieces = a.subtract(b)
        assert {str(p) for p in pieces} == {"10xx", "11x0"}

    def test_pieces_are_disjoint(self):
        a = Ternary.wildcard(6)
        b = Ternary.from_string("x101xx")
        pieces = a.subtract(b)
        for i, p in enumerate(pieces):
            for q in pieces[i + 1:]:
                assert not p.intersects(q)


class TestStructure:
    def test_concat(self):
        high = Ternary.from_string("1x")
        low = Ternary.from_string("01")
        assert str(high.concat(low)) == "1x01"

    def test_extract(self):
        t = Ternary.from_string("1x01")
        assert str(t.extract(0, 2)) == "01"
        assert str(t.extract(2, 2)) == "1x"
        with pytest.raises(ValueError):
            t.extract(3, 2)

    def test_concat_extract_round_trip(self):
        high = Ternary.from_string("x10")
        low = Ternary.from_string("0x")
        joined = high.concat(low)
        assert joined.extract(2, 3) == high
        assert joined.extract(0, 2) == low

    def test_hash_consistency(self):
        a = Ternary.from_string("1x0")
        b = Ternary.from_string("1x0")
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestSampling:
    def test_sample_always_matches(self, rng):
        t = Ternary.from_string("1xx0x1xx")
        for _ in range(50):
            assert t.matches(t.sample(rng))

    def test_sample_exact(self, rng):
        t = Ternary.exact(0x5A, 8)
        assert t.sample(rng) == 0x5A


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

@settings(max_examples=200)
@given(a=ternaries(), b=ternaries(), p=points())
def test_prop_intersection_is_conjunction(a, b, p):
    """p ∈ a∩b  ⇔  p ∈ a and p ∈ b."""
    overlap = a.intersection(b)
    in_both = a.matches(p) and b.matches(p)
    if overlap is None:
        assert not in_both
    else:
        assert overlap.matches(p) == in_both


@settings(max_examples=200)
@given(a=ternaries(), b=ternaries(), p=points())
def test_prop_subtract_is_set_difference(a, b, p):
    """p ∈ a−b  ⇔  p ∈ a and p ∉ b."""
    pieces = a.subtract(b)
    in_difference = any(piece.matches(p) for piece in pieces)
    assert in_difference == (a.matches(p) and not b.matches(p))


@settings(max_examples=200)
@given(a=ternaries(), b=ternaries())
def test_prop_subtract_pieces_disjoint_and_sized(a, b):
    pieces = a.subtract(b)
    for i, p in enumerate(pieces):
        for q in pieces[i + 1:]:
            assert not p.intersects(q)
    # Exact cardinality check via sizes (pieces are disjoint subsets of a).
    total = sum(piece.size() for piece in pieces)
    overlap = a.intersection(b)
    expected = a.size() - (overlap.size() if overlap else 0)
    assert total == expected


@settings(max_examples=200)
@given(a=ternaries(), b=ternaries())
def test_prop_covers_iff_empty_subtraction(a, b):
    assert b.covers(a) == (a.subtract(b) == [])


@settings(max_examples=100)
@given(t=ternaries())
def test_prop_string_round_trip(t):
    assert Ternary.from_string(str(t)) == t
