"""Unit tests for header layouts and IP notation helpers."""

import pytest

from repro.flowspace import (
    FieldSpec,
    FIVE_TUPLE_LAYOUT,
    HeaderLayout,
    OPENFLOW_10_LAYOUT,
    Ternary,
    TWO_FIELD_LAYOUT,
    format_ip,
    ip_prefix_to_ternary,
    parse_ip,
    ternary_to_ip_prefix,
)


class TestLayoutBasics:
    def test_widths(self):
        assert OPENFLOW_10_LAYOUT.width == 48 + 48 + 16 + 32 + 32 + 8 + 16 + 16
        assert FIVE_TUPLE_LAYOUT.width == 104
        assert TWO_FIELD_LAYOUT.width == 16

    def test_field_lookup(self):
        spec = FIVE_TUPLE_LAYOUT.field("nw_src")
        assert spec.width == 32

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            FIVE_TUPLE_LAYOUT.field("nope")

    def test_contains(self):
        assert "nw_dst" in FIVE_TUPLE_LAYOUT
        assert "bogus" not in FIVE_TUPLE_LAYOUT

    def test_first_field_is_most_significant(self):
        # nw_src occupies the top 32 bits of the 104-bit five-tuple.
        assert FIVE_TUPLE_LAYOUT.offset("nw_src") == 104 - 32

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([FieldSpec("a", 4), FieldSpec("a", 4)])

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([])

    def test_zero_width_field_rejected(self):
        with pytest.raises(ValueError):
            FieldSpec("z", 0)

    def test_equality_and_hash(self):
        clone = HeaderLayout([FieldSpec("f1", 8), FieldSpec("f2", 8)])
        assert clone == TWO_FIELD_LAYOUT
        assert hash(clone) == hash(TWO_FIELD_LAYOUT)


class TestPacking:
    def test_pack_unpack_round_trip(self):
        word = FIVE_TUPLE_LAYOUT.pack_values(nw_src=0x0A000001, tp_dst=80)
        fields = FIVE_TUPLE_LAYOUT.unpack(word)
        assert fields["nw_src"] == 0x0A000001
        assert fields["tp_dst"] == 80
        assert fields["nw_dst"] == 0

    def test_pack_rejects_unknown(self):
        with pytest.raises(KeyError):
            FIVE_TUPLE_LAYOUT.pack_values(bogus=1)

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FIVE_TUPLE_LAYOUT.pack_values(nw_proto=256)

    def test_field_of_bit(self):
        assert FIVE_TUPLE_LAYOUT.field_of_bit(0) == "tp_dst"
        assert FIVE_TUPLE_LAYOUT.field_of_bit(103) == "nw_src"
        with pytest.raises(IndexError):
            FIVE_TUPLE_LAYOUT.field_of_bit(104)


class TestPackMatch:
    def test_omitted_fields_are_wildcard(self):
        match = TWO_FIELD_LAYOUT.pack_match(f1=5)
        assert TWO_FIELD_LAYOUT.field_ternary(match, "f2").is_wildcard()
        assert TWO_FIELD_LAYOUT.field_ternary(match, "f1") == Ternary.exact(5, 8)

    def test_string_pattern(self):
        match = TWO_FIELD_LAYOUT.pack_match(f1="1xxxxxxx")
        assert TWO_FIELD_LAYOUT.field_ternary(match, "f1").bit(7) == "1"

    def test_cidr_string(self):
        match = FIVE_TUPLE_LAYOUT.pack_match(nw_src="10.0.0.0/8")
        sub = FIVE_TUPLE_LAYOUT.field_ternary(match, "nw_src")
        assert ternary_to_ip_prefix(sub) == "10.0.0.0/8"

    def test_prefix_tuple(self):
        match = TWO_FIELD_LAYOUT.pack_match(f1=(0b10100000, 3))
        assert str(TWO_FIELD_LAYOUT.field_ternary(match, "f1")) == "101xxxxx"

    def test_ternary_value(self):
        t = Ternary.from_string("0000xxxx")
        match = TWO_FIELD_LAYOUT.pack_match(f2=t)
        assert TWO_FIELD_LAYOUT.field_ternary(match, "f2") == t

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            TWO_FIELD_LAYOUT.pack_match(f1=Ternary.wildcard(4))

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            TWO_FIELD_LAYOUT.pack_match(zz=1)

    def test_describe_match(self):
        match = FIVE_TUPLE_LAYOUT.pack_match(nw_src="10.0.0.0/8", tp_dst=80)
        text = FIVE_TUPLE_LAYOUT.describe_match(match)
        assert "nw_src=10.0.0.0/8" in text
        assert "tp_dst=80" in text

    def test_describe_wildcard(self):
        assert TWO_FIELD_LAYOUT.describe_match(Ternary.wildcard(16)) == "*"


class TestIpHelpers:
    def test_parse_format_round_trip(self):
        for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
            assert format_ip(parse_ip(text)) == text

    def test_parse_rejects_bad(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(1 << 32)

    def test_prefix_round_trip(self):
        for text in ("10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32", "0.0.0.0/0"):
            assert ternary_to_ip_prefix(ip_prefix_to_ternary(text)) == text

    def test_prefix_without_slash_is_host(self):
        assert ternary_to_ip_prefix(ip_prefix_to_ternary("1.2.3.4")) == "1.2.3.4/32"

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            ip_prefix_to_ternary("10.0.0.0/33")

    def test_non_prefix_ternary_rejected(self):
        with pytest.raises(ValueError):
            ternary_to_ip_prefix(Ternary.from_string("x" * 31 + "1"))
