"""Unit tests for cache-rule management (eviction policies, timeouts)."""

import pytest

from repro.flowspace import Drop, Forward, Match, Rule, TWO_FIELD_LAYOUT
from repro.flowspace.rule import RuleKind
from repro.switch import CacheManager, EvictionPolicy, Tcam

L = TWO_FIELD_LAYOUT


def cache_rule(f1=None, action=None, origin=None):
    fields = {} if f1 is None else {"f1": f1}
    rule = Rule(
        Match.build(L, **fields), 5, action or Forward("x"), kind=RuleKind.CACHE,
        origin=origin,
    )
    return rule


def manager(capacity=3, policy=EvictionPolicy.LRU, **kwargs):
    tcam = Tcam(L)
    return CacheManager(tcam, capacity=capacity, policy=policy, **kwargs)


class TestInstall:
    def test_install_and_occupancy(self):
        m = manager()
        m.install(cache_rule(f1=1), now=0.0)
        assert m.occupancy() == 1
        assert m.inserted == 1

    def test_rejects_non_cache_rules(self):
        m = manager()
        policy_rule = Rule(Match.any(L), 1, Drop())
        with pytest.raises(ValueError):
            m.install(policy_rule, now=0.0)

    def test_zero_capacity_disables(self):
        m = manager(capacity=0)
        assert m.install(cache_rule(f1=1), now=0.0) is None
        assert m.occupancy() == 0

    def test_duplicate_refreshes_instead_of_duplicating(self):
        m = manager()
        first = m.install(cache_rule(f1=1), now=0.0)
        again = m.install(cache_rule(f1=1), now=5.0)
        assert again is first
        assert m.occupancy() == 1
        assert first.last_hit_at == 5.0

    def test_default_timeouts_stamped(self):
        m = manager(default_idle_timeout=10.0, default_hard_timeout=60.0)
        rule = m.install(cache_rule(f1=1), now=0.0)
        assert rule.idle_timeout == 10.0
        assert rule.hard_timeout == 60.0

    def test_explicit_timeout_preserved(self):
        m = manager(default_idle_timeout=10.0)
        rule = cache_rule(f1=1)
        rule.idle_timeout = 3.0
        m.install(rule, now=0.0)
        assert rule.idle_timeout == 3.0


class TestEviction:
    def test_lru_evicts_least_recent(self):
        m = manager(capacity=2, policy=EvictionPolicy.LRU)
        a = m.install(cache_rule(f1=1), now=0.0)
        b = m.install(cache_rule(f1=2), now=1.0)
        a.last_hit_at = 5.0  # a becomes more recent than b
        m.install(cache_rule(f1=3), now=6.0)
        remaining = {r.match.field("f1").value for r in m.cache_rules()}
        assert remaining == {1, 3}
        assert m.evicted == 1

    def test_fifo_evicts_oldest_install(self):
        m = manager(capacity=2, policy=EvictionPolicy.FIFO)
        a = m.install(cache_rule(f1=1), now=0.0)
        b = m.install(cache_rule(f1=2), now=1.0)
        a.last_hit_at = 100.0  # activity must not matter for FIFO
        m.install(cache_rule(f1=3), now=2.0)
        remaining = {r.match.field("f1").value for r in m.cache_rules()}
        assert remaining == {2, 3}

    def test_random_eviction_deterministic_by_seed(self):
        def run(seed):
            m = manager(capacity=2, policy=EvictionPolicy.RANDOM, seed=seed)
            for i in range(5):
                m.install(cache_rule(f1=i), now=float(i))
            return {r.match.field("f1").value for r in m.cache_rules()}

        assert run(1) == run(1)

    def test_capacity_never_exceeded(self):
        m = manager(capacity=3)
        for i in range(10):
            m.install(cache_rule(f1=i), now=float(i))
        assert m.occupancy() == 3


class TestMaintenance:
    def test_expire(self):
        m = manager(default_idle_timeout=1.0)
        m.install(cache_rule(f1=1), now=0.0)
        fresh = m.install(cache_rule(f1=2), now=0.0)
        fresh.last_hit_at = 4.5
        expired = m.expire(now=5.0)
        assert len(expired) == 1
        assert m.occupancy() == 1

    def test_invalidate_origin(self):
        origin_a = Rule(Match.any(L), 9, Forward("a"))
        origin_b = Rule(Match.any(L), 8, Forward("b"))
        m = manager()
        m.install(cache_rule(f1=1, origin=origin_a), now=0.0)
        m.install(cache_rule(f1=2, origin=origin_a), now=0.0)
        m.install(cache_rule(f1=3, origin=origin_b), now=0.0)
        flushed = m.invalidate_origin(origin_a)
        assert len(flushed) == 2
        assert m.occupancy() == 1

    def test_flush(self):
        m = manager()
        for i in range(3):
            m.install(cache_rule(f1=i), now=0.0)
        assert len(m.flush()) == 3
        assert m.occupancy() == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            manager(capacity=-1)
