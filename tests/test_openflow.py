"""Tests for the OpenFlow substrate: messages, channel, controller base."""

import pytest

from repro.flowspace import Drop, FIVE_TUPLE_LAYOUT, Match, Packet, Rule
from repro.net import EventScheduler
from repro.openflow import (
    BarrierReply,
    BarrierRequest,
    ControlChannel,
    Controller,
    FlowMod,
    FlowModCommand,
    PacketIn,
    StatsReply,
)

L = FIVE_TUPLE_LAYOUT


class TestMessages:
    def test_xids_unique_and_increasing(self):
        a = PacketIn(switch="s0", packet=Packet.from_fields(L))
        b = PacketIn(switch="s0", packet=Packet.from_fields(L))
        assert a.xid != b.xid
        assert b.xid > a.xid

    def test_flow_mod_defaults(self):
        message = FlowMod(switch="s0", command=FlowModCommand.ADD,
                          rule=Rule(Match.any(L), 1, Drop()))
        assert message.match is None


class TestChannel:
    def test_latency_each_direction(self):
        sched = EventScheduler()
        up, down = [], []
        channel = ControlChannel(
            sched, "s0",
            to_controller=lambda m: up.append(sched.now),
            to_switch=lambda m: down.append(sched.now),
            latency_s=1e-3,
        )
        message = BarrierRequest(switch="s0")
        channel.send_to_controller(message)
        sched.run()
        channel.send_to_switch(BarrierReply(switch="s0"))
        sched.run()
        assert up == [pytest.approx(1e-3)]
        assert down == [pytest.approx(2e-3)]
        assert channel.messages_up == 1
        assert channel.messages_down == 1

    def test_fifo_per_direction(self):
        sched = EventScheduler()
        order = []
        channel = ControlChannel(
            sched, "s0",
            to_controller=lambda m: order.append(m.xid),
            to_switch=lambda m: None,
        )
        first = BarrierRequest(switch="s0")
        second = BarrierRequest(switch="s0")
        channel.send_to_controller(first)
        channel.send_to_controller(second)
        sched.run()
        assert order == [first.xid, second.xid]


class FakeSwitch:
    def __init__(self, name):
        self.name = name
        self.received = []

    def receive_control(self, message):
        self.received.append(message)


class TestControllerBase:
    def test_connect_and_dispatch(self):
        sched = EventScheduler()
        seen = []

        class Probe(Controller):
            def handle_packet_in(self, message):
                seen.append(message)

        controller = Probe(sched, processing_rate=1000.0)
        switch = FakeSwitch("s0")
        channel = controller.connect_switch(switch)
        channel.send_to_controller(PacketIn(switch="s0", packet=Packet.from_fields(L)))
        sched.run()
        assert len(seen) == 1
        assert controller.messages_received == 1

    def test_cpu_queue_overflow(self):
        sched = EventScheduler()
        dropped = []

        class Probe(Controller):
            def on_message_dropped(self, message):
                dropped.append(message)

        controller = Probe(sched, processing_rate=1.0, queue_limit=1)
        switch = FakeSwitch("s0")
        channel = controller.connect_switch(switch)
        for _ in range(5):
            channel.send_to_controller(PacketIn(switch="s0", packet=Packet.from_fields(L)))
        sched.run(until=0.01)
        assert controller.messages_dropped >= 1
        assert len(dropped) == controller.messages_dropped

    def test_barrier_default_reply(self):
        sched = EventScheduler()
        controller = Controller(sched, processing_rate=1000.0)
        switch = FakeSwitch("s0")
        channel = controller.connect_switch(switch)
        request = BarrierRequest(switch="s0")
        channel.send_to_controller(request)
        sched.run()
        assert len(switch.received) == 1
        reply = switch.received[0]
        assert isinstance(reply, BarrierReply)
        assert reply.request_xid == request.xid

    def test_stats_reply_default_ignored(self):
        sched = EventScheduler()
        controller = Controller(sched, processing_rate=1000.0)
        switch = FakeSwitch("s0")
        channel = controller.connect_switch(switch)
        channel.send_to_controller(StatsReply(switch="s0"))
        sched.run()  # must not raise

    def test_cpu_utilization_probe(self):
        sched = EventScheduler()
        controller = Controller(sched, processing_rate=10.0)
        switch = FakeSwitch("s0")
        channel = controller.connect_switch(switch)
        channel.send_to_controller(BarrierRequest(switch="s0"))
        sched.run()
        assert controller.cpu.completed == 1
        assert controller.cpu.busy_time == pytest.approx(0.1)
